//! Property-based tests: every profile in a broad parameter envelope
//! produces valid, deterministic micro-op streams.

use csmt_trace::profile::{TraceClass, TraceProfile};
use csmt_trace::{Program, ThreadTrace, WrongPathSource};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = TraceProfile> {
    (
        0.02f64..0.9, // dep_tightness
        0.0f64..0.8,  // global_src_frac
        12u64..20,    // log2 footprint
        0.2f64..1.0,  // hot_frac
        0.0f64..1.0,  // stride_frac
        2.0f64..80.0, // mean_trip
        0.0f64..0.3,  // chaotic
        2usize..600,  // static blocks
        2usize..30,   // int span
        2usize..30,   // fp span
        1usize..8,    // dep_min
    )
        .prop_map(
            |(dep, glob, lfp, hot, stride, trip, chaos, blocks, ispan, fspan, dmin)| {
                let mut p = TraceProfile::balanced("prop");
                p.dep_tightness = dep;
                p.global_src_frac = glob;
                p.footprint = 1 << lfp;
                p.hot_frac = hot;
                p.stride_frac = stride;
                p.mean_trip = trip;
                p.chaotic_branch_frac = chaos;
                p.static_blocks = blocks;
                p.int_reg_span = ispan;
                p.fp_reg_span = fspan;
                p.dep_min = dmin;
                p
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_profile_generates_valid_uops(p in arb_profile(), seed: u64) {
        p.validate().unwrap();
        let mut t = ThreadTrace::from_profile(&p, seed);
        for _ in 0..400 {
            let u = t.next_uop();
            u.validate().unwrap();
        }
    }

    #[test]
    fn streams_are_deterministic(p in arb_profile(), seed: u64) {
        let mut a = ThreadTrace::from_profile(&p, seed);
        let mut b = ThreadTrace::from_profile(&p, seed);
        for _ in 0..200 {
            prop_assert_eq!(a.next_uop(), b.next_uop());
        }
    }

    #[test]
    fn wrong_path_never_branches(p in arb_profile(), seed: u64) {
        let mut w = WrongPathSource::new(&p, seed);
        for _ in 0..200 {
            let u = w.next_uop();
            u.validate().unwrap();
            prop_assert!(!u.class.is_branch());
        }
    }

    #[test]
    fn programs_have_valid_structure(p in arb_profile(), seed: u64) {
        let prog = Program::synthesize(&p, seed);
        prop_assert_eq!(prog.blocks.len(), p.static_blocks);
        for b in &prog.blocks {
            prop_assert!(b.base_trip >= 1);
            prop_assert!((b.succ[0] as usize) < p.static_blocks);
            prop_assert!((b.succ[1] as usize) < p.static_blocks);
            prop_assert_ne!(b.succ[0], b.id);
            prop_assert_ne!(b.succ[1], b.id);
        }
    }

    #[test]
    fn variants_preserve_validity(p in arb_profile(), mem: bool) {
        let v = p.variant(if mem { TraceClass::Mem } else { TraceClass::Ilp });
        v.validate().unwrap();
    }

    #[test]
    fn branch_targets_match_next_blocks(p in arb_profile(), seed: u64) {
        // The uop after a branch belongs to the block the branch names.
        let mut t = ThreadTrace::from_profile(&p, seed);
        let mut prev_target: Option<u32> = None;
        for _ in 0..300 {
            let u = t.next_uop();
            if let Some(tgt) = prev_target.take() {
                prop_assert_eq!(u.code_block, tgt, "control flow mismatch");
            }
            if let Some(b) = u.branch {
                prev_target = Some(b.target);
            }
        }
    }
}
