//! Property tests for the binary trace format: arbitrary *valid* micro-ops
//! round-trip bit-exactly.

use csmt_trace::{TraceReader, TraceWriter};
use csmt_types::uop::RegOperand;
use csmt_types::{LogReg, MicroOp, OpClass, RegClass};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Option<RegOperand>> {
    prop::option::of((0u8..32, any::<bool>()).prop_map(|(r, fp)| RegOperand {
        reg: LogReg(r),
        class: if fp { RegClass::FpSimd } else { RegClass::Int },
    }))
}

fn arb_uop() -> impl Strategy<Value = MicroOp> {
    (
        any::<u64>(), // pc
        0u8..8,       // class selector (no Copy in traces)
        arb_reg(),
        arb_reg(),
        arb_reg(),
        any::<u64>(), // addr
        prop::sample::select(vec![1u8, 2, 4, 8]),
        any::<bool>(), // taken
        any::<u32>(),  // target
        any::<u32>(),  // code block
        any::<bool>(), // mrom
    )
        .prop_map(
            |(pc, cls, dest, s0, s1, addr, size, taken, target, block, mrom)| {
                let class = match cls {
                    0 => OpClass::Int,
                    1 => OpClass::IntMul,
                    2 => OpClass::FpSimd,
                    3 => OpClass::FpDiv,
                    4 => OpClass::Load,
                    5 => OpClass::Store,
                    6 => OpClass::Branch,
                    _ => OpClass::BranchIndirect,
                };
                MicroOp {
                    pc,
                    class,
                    dest: if class == OpClass::Store { None } else { dest },
                    srcs: [s0, s1],
                    mem: class.is_mem().then_some(csmt_types::MemInfo { addr, size }),
                    branch: class
                        .is_branch()
                        .then_some(csmt_types::BranchInfo { taken, target }),
                    code_block: block,
                    is_mrom: mrom,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_uops_round_trip(uops in prop::collection::vec(arb_uop(), 1..200)) {
        let mut sink = Vec::new();
        {
            let mut w = TraceWriter::new(&mut sink, "prop", 7, uops.len() as u64).unwrap();
            for u in &uops {
                w.write(u).unwrap();
            }
            w.finish().unwrap();
        }
        let r = TraceReader::new(&sink[..]).unwrap();
        let back = r.read_all().unwrap();
        prop_assert_eq!(back, uops);
    }

    #[test]
    fn header_name_round_trips(name in "[a-zA-Z0-9 _./-]{0,64}", seed: u64) {
        let mut sink = Vec::new();
        TraceWriter::new(&mut sink, &name, seed, 0).unwrap().finish().unwrap();
        let r = TraceReader::new(&sink[..]).unwrap();
        prop_assert_eq!(&r.header().name, &name);
        prop_assert_eq!(r.header().seed, seed);
        prop_assert_eq!(r.header().count, 0);
    }

    #[test]
    fn truncated_files_error_not_panic(
        uops in prop::collection::vec(arb_uop(), 1..30),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut sink = Vec::new();
        {
            let mut w = TraceWriter::new(&mut sink, "t", 0, uops.len() as u64).unwrap();
            for u in &uops {
                w.write(u).unwrap();
            }
            w.finish().unwrap();
        }
        let cut = ((sink.len() as f64) * cut_frac) as usize;
        match TraceReader::new(&sink[..cut]) {
            Err(_) => {} // truncated header
            Ok(mut r) => {
                // Truncated body must surface as Err, never panic.
                while let Ok(Some(_)) = r.next_uop() {}
            }
        }
    }
}
