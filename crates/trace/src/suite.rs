//! The benchmark suite of Table 2: 120 two-threaded workloads in 11
//! categories, each classified ILP / MEM / MIX.
//!
//! Counts follow the paper: nine base categories contribute 3 ILP + 3 MEM +
//! 2 MIX workloads each (72), ISPEC-FSPEC contributes 4 + 4 + 8 (16, the
//! workloads enumerated in Figure 9), and `mixes` contributes 32
//! cross-category pairs — 120 in total.

use crate::profile::{category_base, TraceClass, TraceProfile};
use serde::{Deserialize, Serialize};

/// The nine simple-profile categories of Table 2.
pub const BASE_CATEGORIES: [&str; 9] = [
    "DH",
    "FSPEC00",
    "ISPEC00",
    "multimedia",
    "office",
    "productivity",
    "server",
    "workstation",
    "miscellanea",
];

/// A benchmark category (Table 2 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    Base(usize), // index into BASE_CATEGORIES
    IspecFspec,
    Mixes,
}

impl Category {
    pub fn name(self) -> &'static str {
        match self {
            Category::Base(i) => BASE_CATEGORIES[i],
            Category::IspecFspec => "ISPEC-FSPEC",
            Category::Mixes => "mixes",
        }
    }

    /// All 11 categories, in the paper's reporting order.
    pub fn all() -> Vec<Category> {
        let mut v: Vec<Category> = (0..BASE_CATEGORIES.len()).map(Category::Base).collect();
        v.push(Category::IspecFspec);
        v.push(Category::Mixes);
        v
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload classification (Table 2 "Types" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Both traces highly parallel.
    Ilp,
    /// Both traces memory-bounded.
    Mem,
    /// One of each.
    Mix,
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadKind::Ilp => write!(f, "ilp"),
            WorkloadKind::Mem => write!(f, "mem"),
            WorkloadKind::Mix => write!(f, "mix"),
        }
    }
}

/// One 2-threaded workload: two trace profiles plus their seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Paper-style name, e.g. `ISPEC-FSPEC/mix.2.3`.
    pub name: String,
    pub category: Category,
    pub kind: WorkloadKind,
    /// The two single-thread traces.
    pub traces: [TraceSpec; 2],
}

/// A single-thread trace: profile + generation seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    pub profile: TraceProfile,
    pub seed: u64,
}

/// Stable 64-bit hash of a workload/trace name (FNV-1a) used to derive
/// seeds, so the suite never changes when unrelated code does.
fn name_seed(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn spec(category: &str, class: TraceClass, instance: u32) -> TraceSpec {
    let profile = category_base(category).variant(class);
    TraceSpec {
        seed: name_seed(&format!("{category}/{class}/{instance}")),
        profile,
    }
}

fn same_category_workloads(cat_idx: usize) -> Vec<Workload> {
    let cat = BASE_CATEGORIES[cat_idx];
    let mut out = Vec::with_capacity(8);
    // 3 ILP: two highly-parallel traces (different seeds).
    for i in 0..3u32 {
        out.push(Workload {
            name: format!("{cat}/ilp.2.{}", i + 1),
            category: Category::Base(cat_idx),
            kind: WorkloadKind::Ilp,
            traces: [
                spec(cat, TraceClass::Ilp, 2 * i),
                spec(cat, TraceClass::Ilp, 2 * i + 1),
            ],
        });
    }
    // 3 MEM.
    for i in 0..3u32 {
        out.push(Workload {
            name: format!("{cat}/mem.2.{}", i + 1),
            category: Category::Base(cat_idx),
            kind: WorkloadKind::Mem,
            traces: [
                spec(cat, TraceClass::Mem, 2 * i),
                spec(cat, TraceClass::Mem, 2 * i + 1),
            ],
        });
    }
    // 2 MIX: one parallel + one memory-bounded.
    for i in 0..2u32 {
        out.push(Workload {
            name: format!("{cat}/mix.2.{}", i + 1),
            category: Category::Base(cat_idx),
            kind: WorkloadKind::Mix,
            traces: [
                spec(cat, TraceClass::Ilp, 10 + i),
                spec(cat, TraceClass::Mem, 10 + i),
            ],
        });
    }
    out
}

fn ispec_fspec_workloads() -> Vec<Workload> {
    // Figure 9 enumerates ilp.2.1–4, mem.2.1–4, mix.2.1–8. Every workload
    // pairs one ISPEC00 trace with one FSPEC00 trace — almost disjoint
    // register-file demand, the case where static RF partitioning loses.
    let mut out = Vec::with_capacity(16);
    for i in 0..4u32 {
        out.push(Workload {
            name: format!("ISPEC-FSPEC/ilp.2.{}", i + 1),
            category: Category::IspecFspec,
            kind: WorkloadKind::Ilp,
            traces: [
                spec("ISPEC00", TraceClass::Ilp, 20 + i),
                spec("FSPEC00", TraceClass::Ilp, 20 + i),
            ],
        });
    }
    for i in 0..4u32 {
        out.push(Workload {
            name: format!("ISPEC-FSPEC/mem.2.{}", i + 1),
            category: Category::IspecFspec,
            kind: WorkloadKind::Mem,
            traces: [
                spec("ISPEC00", TraceClass::Mem, 20 + i),
                spec("FSPEC00", TraceClass::Mem, 20 + i),
            ],
        });
    }
    for i in 0..8u32 {
        // Alternate which side is the memory-bounded trace.
        let (c0, c1, t0, t1) = if i % 2 == 0 {
            ("ISPEC00", "FSPEC00", TraceClass::Ilp, TraceClass::Mem)
        } else {
            ("ISPEC00", "FSPEC00", TraceClass::Mem, TraceClass::Ilp)
        };
        out.push(Workload {
            name: format!("ISPEC-FSPEC/mix.2.{}", i + 1),
            category: Category::IspecFspec,
            kind: WorkloadKind::Mix,
            traces: [spec(c0, t0, 30 + i), spec(c1, t1, 30 + i)],
        });
    }
    out
}

fn mixes_workloads() -> Vec<Workload> {
    // 32 cross-category pairs. Deterministic coverage: walk category pairs
    // (i, i+k) for k = 1..4 offsets, pairing an ILP trace of one category
    // with a MEM trace of another (the paper's mixes are all MIX-type).
    let n = BASE_CATEGORIES.len();
    let mut out = Vec::with_capacity(32);
    let mut idx = 0u32;
    'outer: for k in 1..n {
        for i in 0..n {
            if out.len() == 32 {
                break 'outer;
            }
            let a = BASE_CATEGORIES[i];
            let b = BASE_CATEGORIES[(i + k) % n];
            let (ca, cb) = if idx.is_multiple_of(2) {
                (TraceClass::Ilp, TraceClass::Mem)
            } else {
                (TraceClass::Mem, TraceClass::Ilp)
            };
            idx += 1;
            out.push(Workload {
                name: format!("mixes/mix.2.{idx}"),
                category: Category::Mixes,
                kind: WorkloadKind::Mix,
                traces: [spec(a, ca, 40 + idx), spec(b, cb, 40 + idx)],
            });
        }
    }
    out
}

/// An N-threaded workload bundle for scaled machine shapes
/// (`num_threads > 2`). Purely additive to the 2-thread Table 2 suite:
/// [`Workload`] and [`suite`] are untouched; bundles reuse the same
/// category profiles with a disjoint seed namespace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bundle {
    /// e.g. `ISPEC00/ilp.4`.
    pub name: String,
    pub category: Category,
    pub kind: WorkloadKind,
    /// One single-thread trace per hardware thread.
    pub traces: Vec<TraceSpec>,
}

/// Six deterministic N-thread bundles: an all-ILP, an all-MEM, and an
/// alternating MIX bundle from each of the two register-demand-contrasting
/// categories (ISPEC00, FSPEC00) — the shapes the scaled figures sweep.
pub fn bundles(n: usize) -> Vec<Bundle> {
    assert!(n >= 1, "a bundle needs at least one thread");
    // BASE_CATEGORIES indices: 2 = ISPEC00, 1 = FSPEC00.
    let picks: [(usize, WorkloadKind); 6] = [
        (2, WorkloadKind::Ilp),
        (2, WorkloadKind::Mem),
        (2, WorkloadKind::Mix),
        (1, WorkloadKind::Ilp),
        (1, WorkloadKind::Mem),
        (1, WorkloadKind::Mix),
    ];
    picks
        .iter()
        .map(|&(cat_idx, kind)| {
            let cat = BASE_CATEGORIES[cat_idx];
            let traces: Vec<TraceSpec> = (0..n as u32)
                .map(|t| {
                    let class = match kind {
                        WorkloadKind::Ilp => TraceClass::Ilp,
                        WorkloadKind::Mem => TraceClass::Mem,
                        WorkloadKind::Mix => {
                            if t % 2 == 0 {
                                TraceClass::Ilp
                            } else {
                                TraceClass::Mem
                            }
                        }
                    };
                    // Instances 100+ keep bundle seeds disjoint from every
                    // Table 2 seed (which stay below 100).
                    spec(cat, class, 100 + t)
                })
                .collect();
            Bundle {
                name: format!("{cat}/{kind}.{n}"),
                category: Category::Base(cat_idx),
                kind,
                traces,
            }
        })
        .collect()
}

/// The full 120-workload suite of Table 2.
pub fn suite() -> Vec<Workload> {
    let mut out = Vec::with_capacity(120);
    for i in 0..BASE_CATEGORIES.len() {
        out.extend(same_category_workloads(i));
    }
    out.extend(ispec_fspec_workloads());
    out.extend(mixes_workloads());
    out
}

/// Workloads of one category.
pub fn category_workloads(cat: Category) -> Vec<Workload> {
    suite().into_iter().filter(|w| w.category == cat).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_120_workloads() {
        assert_eq!(suite().len(), 120);
    }

    #[test]
    fn category_counts_match_table2() {
        let s = suite();
        for i in 0..BASE_CATEGORIES.len() {
            let cat: Vec<_> = s
                .iter()
                .filter(|w| w.category == Category::Base(i))
                .collect();
            assert_eq!(cat.len(), 8, "{}", BASE_CATEGORIES[i]);
            assert_eq!(
                cat.iter().filter(|w| w.kind == WorkloadKind::Ilp).count(),
                3
            );
            assert_eq!(
                cat.iter().filter(|w| w.kind == WorkloadKind::Mem).count(),
                3
            );
            assert_eq!(
                cat.iter().filter(|w| w.kind == WorkloadKind::Mix).count(),
                2
            );
        }
        let isfs: Vec<_> = s
            .iter()
            .filter(|w| w.category == Category::IspecFspec)
            .collect();
        assert_eq!(isfs.len(), 16);
        assert_eq!(
            isfs.iter().filter(|w| w.kind == WorkloadKind::Ilp).count(),
            4
        );
        assert_eq!(
            isfs.iter().filter(|w| w.kind == WorkloadKind::Mem).count(),
            4
        );
        assert_eq!(
            isfs.iter().filter(|w| w.kind == WorkloadKind::Mix).count(),
            8
        );
        let mixes: Vec<_> = s.iter().filter(|w| w.category == Category::Mixes).collect();
        assert_eq!(mixes.len(), 32);
        assert!(mixes.iter().all(|w| w.kind == WorkloadKind::Mix));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = suite().into_iter().map(|w| w.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn seeds_are_unique_within_workload() {
        for w in suite() {
            assert_ne!(
                (w.traces[0].seed, &w.traces[0].profile.name),
                (w.traces[1].seed, &w.traces[1].profile.name),
                "{}: identical traces",
                w.name
            );
        }
    }

    #[test]
    fn mix_workloads_pair_ilp_with_mem() {
        for w in suite() {
            if w.kind == WorkloadKind::Mix && w.category != Category::Mixes {
                let tags: Vec<bool> = w
                    .traces
                    .iter()
                    .map(|t| t.profile.name.ends_with("-mem"))
                    .collect();
                assert_eq!(
                    tags.iter().filter(|&&x| x).count(),
                    1,
                    "{}: expected exactly one memory-bounded trace",
                    w.name
                );
            }
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite();
        let b = suite();
        assert_eq!(a, b);
    }

    #[test]
    fn all_profiles_validate() {
        for w in suite() {
            for t in &w.traces {
                t.profile.validate().unwrap();
            }
        }
    }

    #[test]
    fn mixes_cover_many_category_pairs() {
        let mixes = category_workloads(Category::Mixes);
        let mut pairs = std::collections::HashSet::new();
        for w in &mixes {
            let a = w.traces[0]
                .profile
                .name
                .split('-')
                .next()
                .unwrap()
                .to_string();
            let b = w.traces[1]
                .profile
                .name
                .split('-')
                .next()
                .unwrap()
                .to_string();
            assert_ne!(a, b, "{}: same category on both threads", w.name);
            pairs.insert((a, b));
        }
        assert!(pairs.len() >= 24, "only {} distinct pairs", pairs.len());
    }

    #[test]
    fn bundles_scale_with_thread_count() {
        for n in 1..=8usize {
            let bs = bundles(n);
            assert_eq!(bs.len(), 6);
            for b in &bs {
                assert_eq!(b.traces.len(), n, "{}", b.name);
                for t in &b.traces {
                    t.profile.validate().unwrap();
                }
            }
            let mut names: Vec<&str> = bs.iter().map(|b| b.name.as_str()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), 6);
        }
    }

    #[test]
    fn bundles_are_deterministic_and_seed_disjoint_from_suite() {
        assert_eq!(bundles(4), bundles(4));
        let suite_seeds: std::collections::HashSet<u64> = suite()
            .iter()
            .flat_map(|w| w.traces.iter().map(|t| t.seed))
            .collect();
        for b in bundles(8) {
            let mut seen = std::collections::HashSet::new();
            for t in &b.traces {
                assert!(
                    !suite_seeds.contains(&t.seed),
                    "{}: seed collides with Table 2",
                    b.name
                );
                assert!(
                    seen.insert((t.seed, t.profile.name.clone())),
                    "{}: duplicate trace within bundle",
                    b.name
                );
            }
        }
    }

    #[test]
    fn mix_bundles_alternate_classes() {
        for b in bundles(4) {
            if b.kind == WorkloadKind::Mix {
                let mem: Vec<bool> = b
                    .traces
                    .iter()
                    .map(|t| t.profile.name.ends_with("-mem"))
                    .collect();
                assert_eq!(mem, vec![false, true, false, true], "{}", b.name);
            }
        }
    }

    #[test]
    fn category_all_is_eleven() {
        assert_eq!(Category::all().len(), 11);
        let names: Vec<_> = Category::all().iter().map(|c| c.name()).collect();
        assert!(names.contains(&"ISPEC-FSPEC"));
        assert!(names.contains(&"mixes"));
    }
}
