//! Binary trace files.
//!
//! The paper's simulator is *trace-driven*: workloads are files of decoded
//! micro-ops. This module provides the equivalent interchange format so
//! traces can be recorded once (e.g. from the synthetic generator, or from
//! an external decoder) and replayed byte-identically:
//!
//! * fixed-size little-endian records (no allocation while streaming),
//! * a self-describing header (magic, version, source profile name, seed,
//!   record count),
//! * a streaming [`TraceReader`] yielding [`MicroOp`]s, and a
//!   [`TraceWriter`] that can capture any uop source.
//!
//! Format (version 1):
//!
//! ```text
//! header:  b"CSMT" u16(version) u16(name_len) name_bytes u64(seed) u64(count)
//! record:  u64 pc | u8 class | u8 flags | u8 dest | u8 src0 | u8 src1
//!          | u64 addr | u8 size | u32 target | u32 code_block   (30 bytes)
//! ```

use bytes::{Buf, BufMut};
use csmt_types::uop::RegOperand;
use csmt_types::{BranchInfo, LogReg, MemInfo, MicroOp, OpClass, RegClass};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CSMT";
const VERSION: u16 = 1;
const RECORD_BYTES: usize = 30;

/// Flag bits in the record's `flags` byte.
mod flags {
    pub const HAS_DEST: u8 = 1 << 0;
    pub const DEST_FP: u8 = 1 << 1;
    pub const HAS_SRC0: u8 = 1 << 2;
    pub const SRC0_FP: u8 = 1 << 3;
    pub const HAS_SRC1: u8 = 1 << 4;
    pub const SRC1_FP: u8 = 1 << 5;
    pub const TAKEN: u8 = 1 << 6;
    pub const MROM: u8 = 1 << 7;
}

fn class_code(c: OpClass) -> u8 {
    match c {
        OpClass::Int => 0,
        OpClass::IntMul => 1,
        OpClass::FpSimd => 2,
        OpClass::FpDiv => 3,
        OpClass::Load => 4,
        OpClass::Store => 5,
        OpClass::Branch => 6,
        OpClass::BranchIndirect => 7,
        OpClass::Copy => 8,
    }
}

fn code_class(b: u8) -> io::Result<OpClass> {
    Ok(match b {
        0 => OpClass::Int,
        1 => OpClass::IntMul,
        2 => OpClass::FpSimd,
        3 => OpClass::FpDiv,
        4 => OpClass::Load,
        5 => OpClass::Store,
        6 => OpClass::Branch,
        7 => OpClass::BranchIndirect,
        8 => OpClass::Copy,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown op class code {other}"),
            ))
        }
    })
}

fn encode_record(u: &MicroOp, buf: &mut Vec<u8>) {
    buf.put_u64_le(u.pc);
    buf.put_u8(class_code(u.class));
    let mut f = 0u8;
    let enc_reg = |op: Option<RegOperand>, has: u8, fp: u8, f: &mut u8| -> u8 {
        match op {
            Some(r) => {
                *f |= has;
                if r.class == RegClass::FpSimd {
                    *f |= fp;
                }
                r.reg.0
            }
            None => 0,
        }
    };
    let dest = enc_reg(u.dest, flags::HAS_DEST, flags::DEST_FP, &mut f);
    let s0 = enc_reg(u.srcs[0], flags::HAS_SRC0, flags::SRC0_FP, &mut f);
    let s1 = enc_reg(u.srcs[1], flags::HAS_SRC1, flags::SRC1_FP, &mut f);
    if u.branch.is_some_and(|b| b.taken) {
        f |= flags::TAKEN;
    }
    if u.is_mrom {
        f |= flags::MROM;
    }
    buf.put_u8(f);
    buf.put_u8(dest);
    buf.put_u8(s0);
    buf.put_u8(s1);
    buf.put_u64_le(u.mem.map_or(0, |m| m.addr));
    buf.put_u8(u.mem.map_or(0, |m| m.size));
    buf.put_u32_le(u.branch.map_or(0, |b| b.target));
    buf.put_u32_le(u.code_block);
}

fn decode_record(mut buf: &[u8]) -> io::Result<MicroOp> {
    debug_assert_eq!(buf.len(), RECORD_BYTES);
    let pc = buf.get_u64_le();
    let class = code_class(buf.get_u8())?;
    let f = buf.get_u8();
    let dest_reg = buf.get_u8();
    let s0 = buf.get_u8();
    let s1 = buf.get_u8();
    let addr = buf.get_u64_le();
    let size = buf.get_u8();
    let target = buf.get_u32_le();
    let code_block = buf.get_u32_le();
    let dec_reg = |present: u8, fp: u8, reg: u8| -> Option<RegOperand> {
        (f & present != 0).then_some(RegOperand {
            reg: LogReg(reg),
            class: if f & fp != 0 {
                RegClass::FpSimd
            } else {
                RegClass::Int
            },
        })
    };
    Ok(MicroOp {
        pc,
        class,
        dest: dec_reg(flags::HAS_DEST, flags::DEST_FP, dest_reg),
        srcs: [
            dec_reg(flags::HAS_SRC0, flags::SRC0_FP, s0),
            dec_reg(flags::HAS_SRC1, flags::SRC1_FP, s1),
        ],
        mem: class.is_mem().then_some(MemInfo { addr, size }),
        branch: class.is_branch().then_some(BranchInfo {
            taken: f & flags::TAKEN != 0,
            target,
        }),
        code_block,
        is_mrom: f & flags::MROM != 0,
    })
}

/// Streaming trace-file writer.
pub struct TraceWriter<W: Write> {
    out: W,
    count: u64,
    buf: Vec<u8>,
}

impl TraceWriter<BufWriter<File>> {
    /// Create a trace file; the count field is fixed up via
    /// [`TraceWriter::finish`]-style two-pass writing, so the writer needs
    /// the count up-front for file sinks. Use [`record_trace`] for the
    /// common record-N-uops case.
    pub fn create(path: &Path, name: &str, seed: u64, count: u64) -> io::Result<Self> {
        let file = BufWriter::new(File::create(path)?);
        TraceWriter::new(file, name, seed, count)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace stream with a known record count.
    pub fn new(mut out: W, name: &str, seed: u64, count: u64) -> io::Result<Self> {
        let name_bytes = name.as_bytes();
        assert!(name_bytes.len() <= u16::MAX as usize, "name too long");
        let mut header = Vec::with_capacity(4 + 2 + 2 + name_bytes.len() + 16);
        header.put_slice(MAGIC);
        header.put_u16_le(VERSION);
        header.put_u16_le(name_bytes.len() as u16);
        header.put_slice(name_bytes);
        header.put_u64_le(seed);
        header.put_u64_le(count);
        out.write_all(&header)?;
        Ok(TraceWriter {
            out,
            count,
            buf: Vec::with_capacity(RECORD_BYTES),
        })
    }

    /// Append one uop. Panics (debug) if more than the declared count is
    /// written.
    pub fn write(&mut self, u: &MicroOp) -> io::Result<()> {
        debug_assert!(self.count > 0, "wrote more records than declared");
        self.count = self.count.saturating_sub(1);
        self.buf.clear();
        encode_record(u, &mut self.buf);
        self.out.write_all(&self.buf)
    }

    /// Flush and return the sink. Errors if fewer records were written
    /// than declared.
    pub fn finish(mut self) -> io::Result<W> {
        if self.count != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} declared records missing", self.count),
            ));
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Trace-file metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    pub name: String,
    pub seed: u64,
    pub count: u64,
}

/// Streaming trace-file reader.
pub struct TraceReader<R: Read> {
    inp: R,
    header: TraceHeader,
    remaining: u64,
    buf: [u8; RECORD_BYTES],
}

impl TraceReader<BufReader<File>> {
    pub fn open(path: &Path) -> io::Result<Self> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    pub fn new(mut inp: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        inp.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut fixed = [0u8; 4];
        inp.read_exact(&mut fixed)?;
        let mut b = &fixed[..];
        let version = b.get_u16_le();
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let name_len = b.get_u16_le() as usize;
        let mut name = vec![0u8; name_len];
        inp.read_exact(&mut name)?;
        let mut tail = [0u8; 16];
        inp.read_exact(&mut tail)?;
        let mut b = &tail[..];
        let seed = b.get_u64_le();
        let count = b.get_u64_le();
        Ok(TraceReader {
            inp,
            header: TraceHeader {
                name: String::from_utf8(name)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
                seed,
                count,
            },
            remaining: count,
            buf: [0; RECORD_BYTES],
        })
    }

    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Read the next uop; `Ok(None)` at end of trace.
    pub fn next_uop(&mut self) -> io::Result<Option<MicroOp>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.inp.read_exact(&mut self.buf)?;
        self.remaining -= 1;
        decode_record(&self.buf).map(Some)
    }

    /// Drain the remaining records into a vector.
    pub fn read_all(mut self) -> io::Result<Vec<MicroOp>> {
        let mut v = Vec::with_capacity(self.remaining.min(1 << 20) as usize);
        while let Some(u) = self.next_uop()? {
            v.push(u);
        }
        Ok(v)
    }
}

/// Record `n` uops of a generator into a trace file.
pub fn record_trace(path: &Path, trace: &mut crate::ThreadTrace, n: u64) -> io::Result<()> {
    let name = trace.profile().name.clone();
    let mut w = TraceWriter::create(path, &name, 0, n)?;
    for _ in 0..n {
        w.write(&trace.next_uop())?;
    }
    w.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{category_base, TraceClass};
    use crate::ThreadTrace;

    fn sample_uops(n: usize) -> Vec<MicroOp> {
        let p = category_base("ISPEC00").variant(TraceClass::Mem);
        let mut t = ThreadTrace::from_profile(&p, 42);
        (0..n).map(|_| t.next_uop()).collect()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let uops = sample_uops(5000);
        let mut sink = Vec::new();
        {
            let mut w = TraceWriter::new(&mut sink, "ispec-mem", 42, uops.len() as u64).unwrap();
            for u in &uops {
                w.write(u).unwrap();
            }
            w.finish().unwrap();
        }
        let r = TraceReader::new(&sink[..]).unwrap();
        assert_eq!(
            r.header(),
            &TraceHeader {
                name: "ispec-mem".into(),
                seed: 42,
                count: uops.len() as u64
            }
        );
        let back = r.read_all().unwrap();
        assert_eq!(back, uops);
    }

    #[test]
    fn record_size_is_stable() {
        // The on-disk format is an interchange contract.
        let mut buf = Vec::new();
        encode_record(&MicroOp::nop(0x40), &mut buf);
        assert_eq!(buf.len(), RECORD_BYTES);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = match TraceReader::new(&b"XXXX\x01\x00\x00\x00"[..]) {
            Err(e) => e,
            Ok(_) => panic!("bad magic accepted"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut sink = Vec::new();
        sink.put_slice(MAGIC);
        sink.put_u16_le(99);
        sink.put_u16_le(0);
        sink.put_u64_le(0);
        sink.put_u64_le(0);
        let err = match TraceReader::new(&sink[..]) {
            Err(e) => e,
            Ok(_) => panic!("bad version accepted"),
        };
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_unknown_class_code() {
        let mut sink = Vec::new();
        {
            let mut w = TraceWriter::new(&mut sink, "x", 0, 1).unwrap();
            w.write(&MicroOp::nop(4)).unwrap();
            w.finish().unwrap();
        }
        // Corrupt the class byte of the first record (offset: header + 8).
        let header_len = 4 + 2 + 2 + 1 + 8 + 8;
        sink[header_len + 8] = 200;
        let mut r = TraceReader::new(&sink[..]).unwrap();
        assert!(r.next_uop().is_err());
    }

    #[test]
    fn finish_detects_short_writes() {
        let mut sink = Vec::new();
        let mut w = TraceWriter::new(&mut sink, "x", 0, 3).unwrap();
        w.write(&MicroOp::nop(0)).unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn next_uop_stops_at_declared_count() {
        let uops = sample_uops(10);
        let mut sink = Vec::new();
        let mut w = TraceWriter::new(&mut sink, "x", 0, 10).unwrap();
        for u in &uops {
            w.write(u).unwrap();
        }
        w.finish().unwrap();
        // Append garbage beyond the declared records.
        sink.extend_from_slice(&[0xAB; 64]);
        let mut r = TraceReader::new(&sink[..]).unwrap();
        let mut n = 0;
        while r.next_uop().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("csmt-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csmt");
        let p = category_base("server").variant(TraceClass::Ilp);
        let mut gen = ThreadTrace::from_profile(&p, 7);
        record_trace(&path, &mut gen, 2000).unwrap();

        let mut fresh = ThreadTrace::from_profile(&p, 7);
        let reader = TraceReader::open(&path).unwrap();
        assert_eq!(reader.header().count, 2000);
        for u in reader.read_all().unwrap() {
            assert_eq!(u, fresh.next_uop());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn all_decoded_uops_validate() {
        let uops = sample_uops(3000);
        let mut sink = Vec::new();
        let mut w = TraceWriter::new(&mut sink, "x", 0, uops.len() as u64).unwrap();
        for u in &uops {
            w.write(u).unwrap();
        }
        w.finish().unwrap();
        for u in TraceReader::new(&sink[..]).unwrap().read_all().unwrap() {
            u.validate().unwrap();
        }
    }
}
