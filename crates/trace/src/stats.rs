//! Trace characterization.
//!
//! Computes, from any micro-op stream, the features the paper's workload
//! taxonomy (Table 2) is built on: instruction mix, code footprint, branch
//! behaviour, dependency distances and data footprint. Used by the
//! `trace_inspection` example and by tests that pin each category's
//! intended character.

use csmt_types::{MicroOp, OpClass, RegClass};
use std::collections::HashMap;

/// Aggregate characteristics of a micro-op stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    pub uops: u64,
    // ---- mix fractions (of all uops) ----
    pub frac_int: f64,
    pub frac_fp: f64,
    pub frac_load: f64,
    pub frac_store: f64,
    pub frac_branch: f64,
    pub frac_mrom: f64,
    // ---- control flow ----
    /// Distinct static PCs (code footprint in uops).
    pub static_uops: usize,
    /// Distinct code blocks touched.
    pub static_blocks: usize,
    /// Fraction of branch executions that were taken.
    pub taken_ratio: f64,
    /// Mean dynamic basic-block length (uops between branches).
    pub mean_block_len: f64,
    /// Empirical per-static-branch outcome entropy, averaged over dynamic
    /// executions (0 = perfectly biased, 1 = coin flips).
    pub branch_entropy: f64,
    // ---- dataflow ----
    /// Mean distance (in producing uops of the same class) from a consumed
    /// register to its most recent producer.
    pub mean_dep_distance: f64,
    /// Fraction of value-producing uops whose destination is FP/SIMD.
    pub fp_dest_share: f64,
    // ---- memory ----
    /// Distinct 64-byte lines touched (data footprint).
    pub data_lines: usize,
    /// Span of touched data addresses (max − min), a footprint proxy that
    /// is robust to short observation windows.
    pub addr_span: u64,
    /// Fraction of memory accesses to the 64 most-touched lines (locality
    /// proxy).
    pub hot_line_frac: f64,
}

/// Characterize the next `n` uops of a stream.
pub fn characterize(mut next: impl FnMut() -> MicroOp, n: u64) -> TraceStats {
    let mut uops = 0u64;
    let mut counts = [0u64; 6]; // int, fp, load, store, branch, mrom
    let mut pcs: HashMap<u64, ()> = HashMap::new();
    let mut blocks: HashMap<u32, ()> = HashMap::new();
    let mut taken = 0u64;
    let mut branches = 0u64;
    let mut branch_outcomes: HashMap<u64, (u64, u64)> = HashMap::new();
    // Per (class, logical reg): index of the last producer in that class.
    let mut last_def: [HashMap<u8, u64>; 2] = [HashMap::new(), HashMap::new()];
    let mut produced: [u64; 2] = [0, 0];
    let mut dep_sum = 0f64;
    let mut dep_n = 0u64;
    let mut fp_dests = 0u64;
    let mut dests = 0u64;
    let mut lines: HashMap<u64, u64> = HashMap::new();
    let mut mem_accesses = 0u64;
    let (mut addr_min, mut addr_max) = (u64::MAX, 0u64);

    for _ in 0..n {
        let u = next();
        uops += 1;
        match u.class {
            OpClass::Int | OpClass::IntMul => counts[0] += 1,
            OpClass::FpSimd | OpClass::FpDiv => counts[1] += 1,
            OpClass::Load => counts[2] += 1,
            OpClass::Store => counts[3] += 1,
            OpClass::Branch | OpClass::BranchIndirect => counts[4] += 1,
            OpClass::Copy => {}
        }
        if u.is_mrom {
            counts[5] += 1;
        }
        pcs.insert(u.pc, ());
        blocks.insert(u.code_block, ());
        if let Some(b) = u.branch {
            branches += 1;
            taken += b.taken as u64;
            let e = branch_outcomes.entry(u.pc).or_insert((0, 0));
            e.0 += b.taken as u64;
            e.1 += 1;
        }
        for s in u.srcs.into_iter().flatten() {
            let k = s.class.idx();
            if let Some(&def_idx) = last_def[k].get(&s.reg.0) {
                dep_sum += (produced[k] - def_idx) as f64;
                dep_n += 1;
            }
        }
        if let Some(d) = u.dest {
            dests += 1;
            if d.class == RegClass::FpSimd {
                fp_dests += 1;
            }
            let k = d.class.idx();
            produced[k] += 1;
            last_def[k].insert(d.reg.0, produced[k]);
        }
        if let Some(m) = u.mem {
            mem_accesses += 1;
            *lines.entry(m.addr / 64).or_insert(0) += 1;
            addr_min = addr_min.min(m.addr);
            addr_max = addr_max.max(m.addr);
        }
    }

    // Entropy over per-branch empirical bias, execution-weighted. Summed
    // in PC order so the result is independent of hash iteration order.
    let mut entropy_sum = 0f64;
    let mut outcomes: Vec<(u64, (u64, u64))> = branch_outcomes.into_iter().collect();
    outcomes.sort_unstable_by_key(|&(pc, _)| pc);
    for &(_, (t, total)) in outcomes.iter() {
        let p = t as f64 / total as f64;
        let h = if p <= 0.0 || p >= 1.0 {
            0.0
        } else {
            -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
        };
        entropy_sum += h * total as f64;
    }

    // Hot-line mass: fraction of accesses landing on the 64 busiest lines.
    let mut line_counts: Vec<u64> = lines.values().copied().collect();
    line_counts.sort_unstable_by(|a, b| b.cmp(a));
    let hot: u64 = line_counts.iter().take(64).sum();

    let f = |c: u64| c as f64 / uops.max(1) as f64;
    TraceStats {
        uops,
        frac_int: f(counts[0]),
        frac_fp: f(counts[1]),
        frac_load: f(counts[2]),
        frac_store: f(counts[3]),
        frac_branch: f(counts[4]),
        frac_mrom: f(counts[5]),
        static_uops: pcs.len(),
        static_blocks: blocks.len(),
        taken_ratio: taken as f64 / branches.max(1) as f64,
        mean_block_len: uops as f64 / branches.max(1) as f64,
        branch_entropy: entropy_sum / branches.max(1) as f64,
        mean_dep_distance: dep_sum / dep_n.max(1) as f64,
        fp_dest_share: fp_dests as f64 / dests.max(1) as f64,
        data_lines: lines.len(),
        addr_span: addr_max.saturating_sub(addr_min.min(addr_max)),
        hot_line_frac: hot as f64 / mem_accesses.max(1) as f64,
    }
}

/// Characterize a [`ThreadTrace`](crate::ThreadTrace)'s next `n` uops.
pub fn characterize_trace(trace: &mut crate::ThreadTrace, n: u64) -> TraceStats {
    characterize(|| trace.next_uop(), n)
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "uops                 {}", self.uops)?;
        writeln!(
            f,
            "mix                  int {:.2}  fp {:.2}  ld {:.2}  st {:.2}  br {:.2}",
            self.frac_int, self.frac_fp, self.frac_load, self.frac_store, self.frac_branch
        )?;
        writeln!(
            f,
            "code                 {} static uops in {} blocks, block len {:.1}",
            self.static_uops, self.static_blocks, self.mean_block_len
        )?;
        writeln!(
            f,
            "branches             taken {:.2}, entropy {:.3}",
            self.taken_ratio, self.branch_entropy
        )?;
        writeln!(
            f,
            "dataflow             dep distance {:.1}, fp-dest share {:.2}",
            self.mean_dep_distance, self.fp_dest_share
        )?;
        write!(
            f,
            "memory               {} lines ({} KB), hot-64-line mass {:.2}",
            self.data_lines,
            self.data_lines * 64 / 1024,
            self.hot_line_frac
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{category_base, TraceClass};
    use crate::ThreadTrace;

    fn stats(cat: &str, class: TraceClass, n: u64) -> TraceStats {
        let p = category_base(cat).variant(class);
        let mut t = ThreadTrace::from_profile(&p, 9);
        characterize_trace(&mut t, n)
    }

    #[test]
    fn mix_fractions_sum_to_one() {
        let s = stats("miscellanea", TraceClass::Ilp, 30_000);
        let sum = s.frac_int + s.frac_fp + s.frac_load + s.frac_store + s.frac_branch;
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn ispec_vs_fspec_character() {
        let ispec = stats("ISPEC00", TraceClass::Ilp, 30_000);
        let fspec = stats("FSPEC00", TraceClass::Ilp, 30_000);
        assert!(ispec.frac_fp < 0.05, "{}", ispec.frac_fp);
        assert!(fspec.frac_fp > 0.25, "{}", fspec.frac_fp);
        assert!(ispec.fp_dest_share < 0.1);
        assert!(fspec.fp_dest_share > 0.3);
        assert!(ispec.frac_branch > fspec.frac_branch);
    }

    #[test]
    fn mem_variant_spans_a_much_larger_footprint() {
        let ilp = stats("server", TraceClass::Ilp, 30_000);
        let mem = stats("server", TraceClass::Mem, 30_000);
        assert!(
            mem.addr_span > 10 * ilp.addr_span,
            "mem {} vs ilp {}",
            mem.addr_span,
            ilp.addr_span
        );
    }

    #[test]
    fn ilp_variant_has_wider_dataflow() {
        let ilp = stats("office", TraceClass::Ilp, 30_000);
        let mem = stats("office", TraceClass::Mem, 30_000);
        assert!(
            ilp.mean_dep_distance > mem.mean_dep_distance,
            "ilp {} vs mem {}",
            ilp.mean_dep_distance,
            mem.mean_dep_distance
        );
    }

    #[test]
    fn chaotic_branches_raise_entropy() {
        // Make every block a decision block (trip count 1) so branch
        // entropy isolates the successor choice: biased (0.9) for calm
        // blocks vs near coin-flip for chaotic ones.
        let mut calm = category_base("DH");
        calm.chaotic_branch_frac = 0.0;
        calm.mean_trip = 1.0;
        let mut wild = calm.clone();
        wild.chaotic_branch_frac = 0.5;
        let mut a = ThreadTrace::from_profile(&calm, 3);
        let mut b = ThreadTrace::from_profile(&wild, 3);
        let sa = characterize_trace(&mut a, 30_000);
        let sb = characterize_trace(&mut b, 30_000);
        assert!(
            sb.branch_entropy > sa.branch_entropy,
            "wild {} vs calm {}",
            sb.branch_entropy,
            sa.branch_entropy
        );
    }

    #[test]
    fn visited_blocks_bounded_by_profile() {
        for cat in ["DH", "office"] {
            let p = category_base(cat).variant(TraceClass::Ilp);
            let mut t = ThreadTrace::from_profile(&p, 9);
            let s = characterize_trace(&mut t, 40_000);
            assert!(s.static_blocks >= 2);
            assert!(s.static_blocks <= p.static_blocks);
        }
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = stats("DH", TraceClass::Ilp, 2_000);
        let text = s.to_string();
        assert!(text.contains("uops"));
        assert!(text.contains("entropy"));
    }
}
