//! Shared immutable uop streams for batched multi-config sweeps.
//!
//! A sweep varies only back-end resource-assignment parameters over the
//! same trace pairs, yet the per-config simulator re-synthesizes the
//! program and re-generates the uop stream for every config point. The
//! stream is a pure function of `(profile, seed)` (see the crate docs),
//! so all config points sharing a trace can read one decoded stream.
//!
//! [`SharedStream`] owns the generator and publishes the stream as a
//! list of immutable fixed-size chunks; [`StreamReader`] is a per-config
//! cursor over those chunks. Extension is demand-driven: whichever
//! reader first runs off the published tail locks the generator and
//! appends the next chunk. Because generation is deterministic and
//! strictly append-only, the published prefix is identical no matter
//! which readers trigger extension in which order — a reader at
//! position `n` always sees the same uop a private generator would have
//! produced as its `n`-th.
//!
//! Wrong-path injection is *not* shared: it depends on machine state
//! (which branches mispredict, how long recovery takes), so every
//! simulator keeps its private [`crate::WrongPathSource`].

use crate::gen::ThreadTrace;
use crate::profile::TraceProfile;
use crate::program::Program;
use csmt_types::MicroOp;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Uops per published chunk. Large enough that steady-state reading is
/// a bounds check and an array index; small enough that a short run
/// does not generate far past what it consumes.
const CHUNK: usize = 4096;

/// One thread trace decoded once and shared, read-only, by every
/// simulator in a batch.
pub struct SharedStream {
    /// Immutable copy of the synthesized program (cache warm-up and
    /// architected-state setup read it; the generator owns its own).
    program: Program,
    seed: u64,
    /// The generator producing the not-yet-published tail.
    tail: Mutex<ThreadTrace>,
    /// Published prefix, in order. Chunks are append-only and immutable
    /// once pushed.
    chunks: RwLock<Vec<Arc<Vec<MicroOp>>>>,
}

/// Ignore lock poisoning: a panicking simulator thread (e.g. a failed
/// validator in a fuzz worker) never leaves the stream in a partial
/// state — chunks are pushed fully built — so the data is still good.
fn lock_tail(m: &Mutex<ThreadTrace>) -> MutexGuard<'_, ThreadTrace> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SharedStream {
    /// Decode `(profile, seed)` once. This is the expensive front-end
    /// work a batch amortizes: program synthesis plus stream generation.
    pub fn new(profile: &TraceProfile, seed: u64) -> Self {
        let program = Program::synthesize(profile, seed);
        SharedStream {
            tail: Mutex::new(ThreadTrace::new(program.clone(), seed)),
            program,
            seed,
            chunks: RwLock::new(Vec::new()),
        }
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    pub fn profile(&self) -> &TraceProfile {
        &self.program.profile
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of uops published so far (tests / diagnostics).
    pub fn published(&self) -> usize {
        self.chunks.read().unwrap_or_else(|e| e.into_inner()).len() * CHUNK
    }

    /// Chunk `idx`, generating forward as needed.
    fn chunk(&self, idx: usize) -> Arc<Vec<MicroOp>> {
        if let Some(c) = self
            .chunks
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(idx)
        {
            return c.clone();
        }
        // Extend under the generator lock. Another reader may have
        // published the chunk between our read miss and acquiring the
        // lock, so re-check each iteration.
        let mut tail = lock_tail(&self.tail);
        loop {
            {
                let chunks = self.chunks.read().unwrap_or_else(|e| e.into_inner());
                if let Some(c) = chunks.get(idx) {
                    return c.clone();
                }
            }
            let mut v = Vec::with_capacity(CHUNK);
            for _ in 0..CHUNK {
                v.push(tail.next_uop());
            }
            self.chunks
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::new(v));
        }
    }
}

impl std::fmt::Debug for SharedStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStream")
            .field("profile", &self.profile().name)
            .field("seed", &self.seed)
            .field("published_uops", &self.published())
            .finish()
    }
}

/// A private cursor over a [`SharedStream`]: one per simulator thread
/// context. Reading is lock-free in the steady state (the current chunk
/// is cached); only crossing into an unpublished chunk takes the
/// stream's locks.
pub struct StreamReader {
    stream: Arc<SharedStream>,
    /// Absolute position in the stream (uops consumed so far).
    pos: usize,
    cur: Option<(usize, Arc<Vec<MicroOp>>)>,
}

impl StreamReader {
    pub fn new(stream: Arc<SharedStream>) -> Self {
        StreamReader {
            stream,
            pos: 0,
            cur: None,
        }
    }

    pub fn profile(&self) -> &TraceProfile {
        self.stream.profile()
    }

    pub fn program(&self) -> &Program {
        self.stream.program()
    }

    /// Uops consumed so far.
    pub fn emitted(&self) -> u64 {
        self.pos as u64
    }

    /// Jump to absolute position `pos` in the stream: the next
    /// [`StreamReader::next_uop`] returns the uop a private generator
    /// would produce as its `pos`-th. Chunks up to `pos` are generated
    /// on demand (once per stream, shared by every reader), so seeking
    /// far ahead costs one generation pass that later readers and
    /// intervals reuse.
    pub fn seek(&mut self, pos: u64) {
        self.pos = pos as usize;
        self.cur = None;
    }

    /// Next correct-path uop — the exact uop a private
    /// [`ThreadTrace`] built from the same `(profile, seed)` would
    /// produce at this position.
    #[inline]
    pub fn next_uop(&mut self) -> MicroOp {
        let idx = self.pos / CHUNK;
        let off = self.pos % CHUNK;
        if self.cur.as_ref().map(|c| c.0) != Some(idx) {
            self.cur = Some((idx, self.stream.chunk(idx)));
        }
        self.pos += 1;
        self.cur.as_ref().unwrap().1[off]
    }
}

impl std::fmt::Debug for StreamReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamReader")
            .field("profile", &self.profile().name)
            .field("pos", &self.pos)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn shared_stream_matches_private_generator() {
        let w = &suite()[0];
        for spec in &w.traces {
            let shared = Arc::new(SharedStream::new(&spec.profile, spec.seed));
            let mut private = ThreadTrace::from_profile(&spec.profile, spec.seed);
            let mut reader = StreamReader::new(shared.clone());
            // Cross several chunk boundaries.
            for i in 0..3 * CHUNK + 17 {
                assert_eq!(
                    reader.next_uop(),
                    private.next_uop(),
                    "divergence at uop {i} of {}",
                    spec.profile.name
                );
            }
        }
    }

    #[test]
    fn seek_matches_a_skipped_private_generator() {
        let w = &suite()[0];
        let spec = &w.traces[0];
        let shared = Arc::new(SharedStream::new(&spec.profile, spec.seed));
        let mut reader = StreamReader::new(shared.clone());
        // Jump across a chunk boundary without reading the prefix.
        let skip = CHUNK as u64 + 321;
        reader.seek(skip);
        assert_eq!(reader.emitted(), skip);
        let mut private = ThreadTrace::from_profile(&spec.profile, spec.seed);
        for _ in 0..skip {
            private.next_uop();
        }
        for i in 0..CHUNK + 50 {
            assert_eq!(reader.next_uop(), private.next_uop(), "uop {i} after seek");
        }
        // Seeking backwards replays the published prefix.
        reader.seek(0);
        let mut fresh = ThreadTrace::from_profile(&spec.profile, spec.seed);
        for i in 0..100 {
            assert_eq!(reader.next_uop(), fresh.next_uop(), "uop {i} after rewind");
        }
    }

    #[test]
    fn interleaved_readers_see_the_same_stream() {
        let w = &suite()[1];
        let spec = &w.traces[0];
        let shared = Arc::new(SharedStream::new(&spec.profile, spec.seed));
        let mut a = StreamReader::new(shared.clone());
        let mut b = StreamReader::new(shared.clone());
        // Reader `a` races ahead (forcing extension), `b` lags; both see
        // the identical prefix.
        let lead: Vec<MicroOp> = (0..CHUNK + 100).map(|_| a.next_uop()).collect();
        let lag: Vec<MicroOp> = (0..CHUNK + 100).map(|_| b.next_uop()).collect();
        assert_eq!(lead, lag);
    }
}
