//! Static synthetic program model.
//!
//! A [`Program`] is a set of basic blocks synthesized from a
//! [`TraceProfile`]. Each block is a sequence
//! of uop *templates* (op class, destination register, memory pattern)
//! terminated by a conditional exit branch. Blocks loop on themselves with a
//! profile-dependent trip count and then transfer to one of two successors,
//! so the dynamic stream has the loop/branch structure real predictors and
//! trace caches exploit — rather than white noise, which would make every
//! front-end model trivially pessimal.

use crate::profile::TraceProfile;
use csmt_types::{LogReg, OpClass, Prng, RegClass};
use serde::{Deserialize, Serialize};

/// How a static memory instruction generates addresses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemPattern {
    /// Sequential walk through one of the program's shared stream regions:
    /// `region_base + k·stride` (mod region size). Regions are shared by
    /// many static instructions — programs walk a handful of arrays, they
    /// do not give every load its own — so the compulsory-miss phase ends
    /// and steady state is line reuse.
    Stride { region: u8, stride: u64 },
    /// Uniform random within the small hot region (L1-resident).
    Hot,
    /// Uniform random within the full footprint (misses for big footprints).
    Cold,
}

/// Number of shared stream regions per program.
pub const NUM_STREAM_REGIONS: usize = 8;

/// One static micro-op template.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UopTemplate {
    pub pc: u64,
    pub class: OpClass,
    /// Destination register (class implied by `dest_class`), if any.
    pub dest: Option<(LogReg, RegClass)>,
    pub mem: Option<MemPattern>,
    pub is_mrom: bool,
}

/// A basic block: body templates plus one exit branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub id: u32,
    pub body: Vec<UopTemplate>,
    /// PC of the exit branch.
    pub branch_pc: u64,
    /// The exit branch is indirect (predicted by the indirect predictor).
    pub indirect_exit: bool,
    /// Base self-loop trip count (≥ 1). 1 means the block never repeats.
    /// The generator adds small per-visit jitter; the base is stable so
    /// predictors can learn the loop exit, as they do for real loops.
    pub base_trip: u32,
    /// Two possible successor blocks.
    pub succ: [u32; 2],
    /// Probability of taking `succ\[0\]` on exit.
    pub succ_bias: f64,
    /// The exit choice is chaotic (data-dependent, unpredictable).
    pub chaotic: bool,
}

/// A complete static program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub blocks: Vec<Block>,
    /// The profile this program was synthesized from (kept for reports).
    pub profile: TraceProfile,
}

/// Address-space layout of the synthetic data segment: the hot region comes
/// first, the remaining footprint is carved into per-instruction stride
/// regions and a shared cold region.
const DATA_BASE: u64 = 0x1000_0000;

impl Program {
    /// Synthesize a static program from a profile, deterministically from
    /// `seed`.
    pub fn synthesize(profile: &TraceProfile, seed: u64) -> Program {
        profile.validate().expect("invalid trace profile");
        let mut rng = Prng::derive(seed, 0xB10C);

        // Mean body length derived from the instruction mix: one exit branch
        // per block, so bodies average (non-branch weight / branch weight).
        let br_w = profile.mix[6] + profile.mix[7];
        let body_w: f64 = profile.mix[..6].iter().sum();
        let mean_body = if br_w > 0.0 {
            (body_w / br_w).clamp(3.0, 24.0)
        } else {
            profile.block_len.clamp(3.0, 24.0)
        };
        // Body-slot class weights: the non-branch part of the mix.
        let body_weights = [
            profile.mix[0],
            profile.mix[1],
            profile.mix[2],
            profile.mix[3],
            profile.mix[4],
            profile.mix[5],
        ];
        let indirect_share = if br_w > 0.0 {
            profile.mix[7] / br_w
        } else {
            0.0
        };

        let n = profile.static_blocks as u32;
        let mut blocks = Vec::with_capacity(n as usize);
        let mut next_pc: u64 = 0x40_0000;

        for id in 0..n {
            let len = rng.geometric(1.0 / mean_body, 48).max(2) as usize;
            let mut body = Vec::with_capacity(len);
            for _ in 0..len {
                let class = match rng.weighted(&body_weights) {
                    0 => OpClass::Int,
                    1 => OpClass::IntMul,
                    2 => OpClass::FpSimd,
                    3 => OpClass::FpDiv,
                    4 => OpClass::Load,
                    _ => OpClass::Store,
                };
                let dest = match class {
                    OpClass::Store => None,
                    OpClass::FpSimd | OpClass::FpDiv => Some((
                        LogReg(rng.below(profile.fp_reg_span as u64) as u8),
                        RegClass::FpSimd,
                    )),
                    OpClass::Load => {
                        // Loads feed whichever file the program pressures.
                        if rng.chance(profile.fp_dest_share()) {
                            Some((
                                LogReg(rng.below(profile.fp_reg_span as u64) as u8),
                                RegClass::FpSimd,
                            ))
                        } else {
                            Some((
                                LogReg(rng.below(profile.int_reg_span as u64) as u8),
                                RegClass::Int,
                            ))
                        }
                    }
                    _ => Some((
                        LogReg(rng.below(profile.int_reg_span as u64) as u8),
                        RegClass::Int,
                    )),
                };
                let mem = if class.is_mem() {
                    Some(Self::pick_mem_pattern(profile, &mut rng))
                } else {
                    None
                };
                body.push(UopTemplate {
                    pc: next_pc,
                    class,
                    dest,
                    mem,
                    is_mrom: rng.chance(profile.mrom_frac),
                });
                next_pc += 4;
            }
            let branch_pc = next_pc;
            next_pc += 4;
            // Successors: mostly nearby blocks (loop nests / straight-line
            // regions), occasionally a far jump, never self (self-looping is
            // modeled by the trip count).
            let near = |rng: &mut Prng| -> u32 {
                let span = 16.min(n.saturating_sub(1)).max(1) as u64;
                let delta = rng.below(span) as i64 - (span / 2) as i64;
                let mut t = id as i64 + delta;
                if t == id as i64 {
                    t += 1;
                }
                t.rem_euclid(n as i64) as u32
            };
            let far = |rng: &mut Prng| rng.below(n as u64) as u32;
            let mut s0 = if rng.chance(0.85) {
                near(&mut rng)
            } else {
                far(&mut rng)
            };
            let mut s1 = if rng.chance(0.85) {
                near(&mut rng)
            } else {
                far(&mut rng)
            };
            if s0 == id {
                s0 = (id + 1) % n;
            }
            if s1 == id {
                s1 = (id + 1) % n;
            }
            let chaotic = rng.chance(profile.chaotic_branch_frac);
            // Chaotic blocks are straight-line decision blocks whose exit
            // direction is a near coin flip; the rest are loops with a
            // stable per-block trip count drawn around the profile mean.
            let base_trip = if chaotic {
                1
            } else {
                let mean = (profile.mean_trip * (0.5 + rng.f64())).max(1.0);
                rng.geometric(1.0 / mean, 4096) as u32
            };
            blocks.push(Block {
                id,
                body,
                branch_pc,
                // Indirect control flow (calls through tables, virtual
                // dispatch) is a decision, not a loop back edge: placing an
                // indirect exit on a loop block would make its target
                // alternate self/successor every visit, which no predictor
                // of this class could learn. The share is scaled up because
                // only decision blocks are eligible.
                indirect_exit: base_trip == 1 && rng.chance((indirect_share * 5.0).min(0.8)),
                base_trip,
                succ: [s0, s1],
                succ_bias: if chaotic {
                    0.35 + 0.3 * rng.f64() // ≈ coin flip: unpredictable
                } else {
                    0.9 + 0.08 * rng.f64() // strongly biased: predictable
                },
                chaotic,
            });
        }

        Program {
            blocks,
            profile: profile.clone(),
        }
    }

    fn pick_mem_pattern(profile: &TraceProfile, rng: &mut Prng) -> MemPattern {
        if rng.chance(profile.hot_frac) {
            MemPattern::Hot
        } else if rng.chance(profile.stride_frac) {
            let stride = if rng.chance(profile.stride_line_frac) {
                64
            } else {
                [8u64, 16][rng.below(2) as usize]
            };
            MemPattern::Stride {
                region: rng.below(NUM_STREAM_REGIONS as u64) as u8,
                stride,
            }
        } else {
            MemPattern::Cold
        }
    }

    /// Size of each shared stream region: larger than the L1 (so line-
    /// granular walks keep missing it) and scaled with the footprint so
    /// memory-bounded programs stream through more than the L2 holds.
    pub fn stream_region_size(&self) -> u64 {
        (self.profile.footprint / 8).clamp(64 << 10, 16 << 20)
    }

    /// Base address of stream region `idx`.
    pub fn stream_base(&self, idx: u8) -> u64 {
        DATA_BASE + self.profile.hot_bytes + idx as u64 * self.stream_region_size()
    }

    /// Address ranges a checkpoint-style cache warm-up should preload:
    /// the hot region (L1-resident) plus every stream region. The caller
    /// clamps to its cache capacities.
    pub fn warm_ranges(&self) -> Vec<(u64, u64)> {
        let mut v = vec![(self.hot_base(), self.profile.hot_bytes)];
        for r in 0..NUM_STREAM_REGIONS {
            v.push((self.stream_base(r as u8), self.stream_region_size()));
        }
        v
    }

    /// Base address of the hot region.
    pub fn hot_base(&self) -> u64 {
        DATA_BASE
    }

    /// Base address of the cold region (everything after the hot bytes).
    pub fn cold_base(&self) -> u64 {
        DATA_BASE + self.profile.hot_bytes
    }

    /// Total dynamic uops per average block iteration (body + branch).
    pub fn mean_block_uops(&self) -> f64 {
        let total: usize = self.blocks.iter().map(|b| b.body.len() + 1).sum();
        total as f64 / self.blocks.len() as f64
    }

    /// Total static uops — the code footprint the trace cache sees.
    pub fn static_uops(&self) -> usize {
        self.blocks.iter().map(|b| b.body.len() + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::category_base;

    #[test]
    fn synthesis_is_deterministic() {
        let p = category_base("ISPEC00");
        let a = Program::synthesize(&p, 42);
        let b = Program::synthesize(&p, 42);
        assert_eq!(a, b);
        let c = Program::synthesize(&p, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn block_count_matches_profile() {
        let p = category_base("office");
        let prog = Program::synthesize(&p, 1);
        assert_eq!(prog.blocks.len(), p.static_blocks);
    }

    #[test]
    fn no_self_successors() {
        let p = category_base("server");
        let prog = Program::synthesize(&p, 7);
        for b in &prog.blocks {
            assert_ne!(b.succ[0], b.id, "block {} self-succ", b.id);
            assert_ne!(b.succ[1], b.id, "block {} self-succ", b.id);
            assert!((b.succ[0] as usize) < prog.blocks.len());
            assert!((b.succ[1] as usize) < prog.blocks.len());
        }
    }

    #[test]
    fn pcs_are_unique_and_word_aligned() {
        let p = category_base("DH");
        let prog = Program::synthesize(&p, 3);
        let mut pcs: Vec<u64> = prog
            .blocks
            .iter()
            .flat_map(|b| {
                b.body
                    .iter()
                    .map(|t| t.pc)
                    .chain(std::iter::once(b.branch_pc))
            })
            .collect();
        let len = pcs.len();
        pcs.sort_unstable();
        pcs.dedup();
        assert_eq!(pcs.len(), len, "duplicate PCs");
        assert!(pcs.iter().all(|pc| pc % 4 == 0));
    }

    #[test]
    fn templates_are_internally_consistent() {
        for cat in ["ISPEC00", "FSPEC00", "server", "multimedia"] {
            let p = category_base(cat);
            let prog = Program::synthesize(&p, 11);
            for b in &prog.blocks {
                for t in &b.body {
                    assert_eq!(t.class.is_mem(), t.mem.is_some(), "{cat}: mem mismatch");
                    assert!(!t.class.is_branch(), "{cat}: branch in body");
                    if t.class == OpClass::Store {
                        assert!(t.dest.is_none(), "{cat}: store with dest");
                    }
                    if let Some((r, RegClass::Int)) = t.dest {
                        assert!((r.idx()) < p.int_reg_span, "{cat}: int reg beyond span");
                    }
                    if let Some((r, RegClass::FpSimd)) = t.dest {
                        assert!((r.idx()) < p.fp_reg_span, "{cat}: fp reg beyond span");
                    }
                }
                assert!(b.base_trip >= 1);
                assert!((0.0..=1.0).contains(&b.succ_bias));
                if b.chaotic {
                    assert_eq!(b.base_trip, 1, "chaotic blocks must not loop");
                }
            }
        }
    }

    #[test]
    fn mean_body_length_tracks_mix() {
        // ISPEC00 is branchy (≈18% branches) → short blocks; FSPEC00 has few
        // branches → long blocks.
        let ispec = Program::synthesize(&category_base("ISPEC00"), 5);
        let fspec = Program::synthesize(&category_base("FSPEC00"), 5);
        assert!(
            fspec.mean_block_uops() > ispec.mean_block_uops() + 2.0,
            "fspec {} vs ispec {}",
            fspec.mean_block_uops(),
            ispec.mean_block_uops()
        );
    }

    #[test]
    fn ispec_code_footprint_exceeds_dh() {
        let ispec = Program::synthesize(&category_base("ISPEC00"), 5);
        let dh = Program::synthesize(&category_base("DH"), 5);
        assert!(ispec.static_uops() > dh.static_uops());
    }
}
