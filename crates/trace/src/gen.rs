//! The dynamic trace generator: walks a [`Program`] and emits an infinite,
//! deterministic micro-op stream, plus a decorrelated wrong-path source used
//! by the pipeline after a branch misprediction (the paper's traces *"hold
//! enough information to faithfully simulate wrong path execution"*, §4.1).

use crate::profile::TraceProfile;
use crate::program::{MemPattern, Program, UopTemplate};
use csmt_types::uop::RegOperand;
use csmt_types::{LogReg, MicroOp, OpClass, Prng, RegClass};
use std::collections::VecDeque;

/// How many recent producers the dependency model remembers per class.
const RECENT_WINDOW: usize = 32;

/// Blocks with a base trip count above this behave as loops (the exit
/// branch is a back edge); at 1 they are decision blocks (the exit branch
/// direction selects the successor).
const LOOP_TRIP_THRESHOLD: u32 = 1;

/// Correct-path trace generator for one thread.
///
/// The stream is infinite — the simulator decides how many uops to commit.
/// Determinism: two `ThreadTrace`s built from the same `(program, seed)`
/// yield identical streams.
pub struct ThreadTrace {
    program: Program,
    rng_ctl: Prng,
    rng_dep: Prng,
    rng_mem: Prng,
    /// Current block index.
    cur: usize,
    /// Remaining repetitions of the current block after this pass.
    trips_left: u64,
    /// Position within the current block body (== len means at the branch).
    pos: usize,
    /// Shared per-region stream cursors, in bytes. All static instructions
    /// walking a region advance the same cursor — the program streams
    /// through a handful of arrays.
    stream_pos: [u64; crate::program::NUM_STREAM_REGIONS],
    /// Per-template cold-burst state: (current line base, accesses left).
    /// Cold misses walk a few consecutive words of a random line, giving
    /// the spatial locality real memory-bound code has — without it every
    /// cold access is a fresh L2 miss and miss rates become absurd.
    cold_state: Vec<(u64, u8)>,
    /// Flattened index of the first template of each block.
    block_base: Vec<u32>,
    /// Recently produced registers per class, most recent first.
    recent: [VecDeque<LogReg>; 2],
    emitted: u64,
}

impl ThreadTrace {
    /// Build a generator for `profile`, synthesizing the static program from
    /// the same seed.
    pub fn from_profile(profile: &TraceProfile, seed: u64) -> Self {
        Self::new(Program::synthesize(profile, seed), seed)
    }

    /// Build a generator walking an existing program.
    pub fn new(program: Program, seed: u64) -> Self {
        let mut block_base = Vec::with_capacity(program.blocks.len());
        let mut acc = 0u32;
        for b in &program.blocks {
            block_base.push(acc);
            acc += b.body.len() as u32;
        }
        let mut rng_ctl = Prng::derive(seed, 0xC011);
        let start = rng_ctl.below(program.blocks.len() as u64) as usize;
        let mut s = ThreadTrace {
            stream_pos: [0; crate::program::NUM_STREAM_REGIONS],
            cold_state: vec![(0, 0); acc as usize],
            block_base,
            program,
            rng_ctl,
            rng_dep: Prng::derive(seed, 0xDE65),
            rng_mem: Prng::derive(seed, 0x3E33),
            cur: start,
            trips_left: 0,
            pos: 0,
            recent: [VecDeque::new(), VecDeque::new()],
            emitted: 0,
        };
        s.enter_block(start);
        s
    }

    /// The profile the underlying program was synthesized from.
    pub fn profile(&self) -> &TraceProfile {
        &self.program.profile
    }

    /// The static program this generator walks.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Total correct-path uops emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn enter_block(&mut self, id: usize) {
        self.cur = id;
        self.pos = 0;
        let b = &self.program.blocks[id];
        self.trips_left = if b.base_trip > LOOP_TRIP_THRESHOLD {
            // Stable base trip count with small per-visit jitter: mostly
            // learnable loop exits, occasional genuine surprise.
            let base = b.base_trip as u64;
            let jitter = match self.rng_ctl.below(32) {
                0 => -1i64,
                1 => 1,
                _ => 0,
            };
            (base as i64 + jitter).max(1) as u64 - 1
        } else {
            0
        };
    }

    /// Emit the next correct-path micro-op.
    pub fn next_uop(&mut self) -> MicroOp {
        let block = &self.program.blocks[self.cur];
        self.emitted += 1;
        if self.pos < block.body.len() {
            let tmpl_idx = self.block_base[self.cur] as usize + self.pos;
            let tmpl = block.body[self.pos];
            self.pos += 1;
            self.emit_from_template(&tmpl, tmpl_idx, block.id)
        } else {
            // Exit branch of the block.
            self.emit_branch(self.cur)
        }
    }

    fn emit_branch(&mut self, cur: usize) -> MicroOp {
        let b = &self.program.blocks[cur];
        let (block_id, branch_pc, indirect_exit, base_trip, succ, succ_bias) = (
            b.id,
            b.branch_pc,
            b.indirect_exit,
            b.base_trip,
            b.succ,
            b.succ_bias,
        );
        let looping = self.trips_left > 0;
        let is_loop_block = base_trip > LOOP_TRIP_THRESHOLD;
        let (taken, next_block): (bool, u32) = if looping {
            self.trips_left -= 1;
            (true, block_id)
        } else {
            let s = if self.rng_ctl.chance(succ_bias) {
                succ[0]
            } else {
                succ[1]
            };
            // For loop blocks the exit is the not-taken direction of the
            // back edge; for decision blocks the direction encodes the
            // successor choice.
            let taken = if is_loop_block { false } else { s == succ[0] };
            (taken, s)
        };
        let class = if indirect_exit {
            OpClass::BranchIndirect
        } else {
            OpClass::Branch
        };
        let src = self.pick_src(RegClass::Int);
        let u = MicroOp {
            pc: branch_pc,
            class,
            dest: None,
            srcs: [src, None],
            mem: None,
            branch: Some(csmt_types::BranchInfo {
                taken,
                target: next_block,
            }),
            code_block: block_id,
            is_mrom: false,
        };
        if next_block == block_id {
            self.pos = 0; // repeat body
        } else {
            self.enter_block(next_block as usize);
        }
        u
    }

    fn emit_from_template(&mut self, t: &UopTemplate, tmpl_idx: usize, block_id: u32) -> MicroOp {
        let mem = t.mem.map(|pat| {
            let (addr, size) = self.gen_addr(pat, tmpl_idx);
            csmt_types::MemInfo { addr, size }
        });
        let srcs = self.gen_srcs(t.class);
        let u = MicroOp {
            pc: t.pc,
            class: t.class,
            dest: t.dest.map(|(reg, class)| RegOperand { reg, class }),
            srcs,
            mem,
            branch: None,
            code_block: block_id,
            is_mrom: t.is_mrom,
        };
        if let Some((reg, class)) = t.dest {
            let q = &mut self.recent[class.idx()];
            // Move-to-front with dedup: renaming resolves a logical register
            // to its *newest* definition, so distance is only meaningful
            // over distinct registers ordered by last definition.
            if let Some(pos) = q.iter().position(|&r| r == reg) {
                q.remove(pos);
            }
            q.push_front(reg);
            if q.len() > RECENT_WINDOW {
                q.pop_back();
            }
        }
        u
    }

    fn gen_addr(&mut self, pat: MemPattern, tmpl_idx: usize) -> (u64, u8) {
        let p = &self.program.profile;
        let size = if self.rng_mem.chance(0.5) { 8 } else { 4 };
        let addr = match pat {
            MemPattern::Hot => {
                (self.program.hot_base() + self.rng_mem.below(p.hot_bytes.max(size))) & !(size - 1)
            }
            MemPattern::Stride { region, stride } => {
                let size = self.program.stream_region_size().max(stride);
                let pos = self.stream_pos[region as usize];
                self.stream_pos[region as usize] = (pos + stride) % size;
                self.program.stream_base(region) + pos
            }
            MemPattern::Cold => {
                if self.cold_state[tmpl_idx].1 == 0 {
                    // New burst: a random line in the footprint, walked for
                    // 4–16 consecutive 8-byte words.
                    let line =
                        (self.program.cold_base() + self.rng_mem.below(p.footprint.max(64))) & !63;
                    let len = 4 + self.rng_mem.below(13) as u8;
                    self.cold_state[tmpl_idx] = (line, len);
                }
                let (line, left) = self.cold_state[tmpl_idx];
                self.cold_state[tmpl_idx].1 = left - 1;
                // Offset advances as the burst drains (≤ 120 bytes, so a
                // burst touches at most two cache lines).
                line + (16 - left as u64).min(15) * 8
            }
        };
        (addr, size as u8)
    }

    fn gen_srcs(&mut self, class: OpClass) -> [Option<RegOperand>; 2] {
        match class {
            OpClass::Int | OpClass::IntMul => [
                self.pick_src(RegClass::Int),
                self.pick_src2(RegClass::Int, true),
            ],
            OpClass::FpSimd | OpClass::FpDiv => [
                self.pick_src(RegClass::FpSimd),
                self.pick_src2(RegClass::FpSimd, true),
            ],
            // Loads read a base address register.
            OpClass::Load => [self.pick_src(RegClass::Int), None],
            // Stores read an address register and a data register.
            OpClass::Store => {
                let data_class = if self.rng_dep.chance(self.program.profile.fp_dest_share()) {
                    RegClass::FpSimd
                } else {
                    RegClass::Int
                };
                [self.pick_src(RegClass::Int), self.pick_src(data_class)]
            }
            OpClass::Branch | OpClass::BranchIndirect => [self.pick_src(RegClass::Int), None],
            OpClass::Copy => [None, None],
        }
    }

    /// Pick a source register of `class`: a loop-invariant global with
    /// probability `global_src_frac`, otherwise the d-th most recent
    /// producer where d = `dep_min` − 1 + a geometric draw with parameter
    /// `dep_tightness`. The second operand of an instruction is widened
    /// further (globals more likely, distance doubled): real code chains
    /// one operand deep and keeps the other shallow (`acc += a[i] * b[i]`).
    fn pick_src2(&mut self, class: RegClass, second: bool) -> Option<RegOperand> {
        let p = &self.program.profile;
        let q = &self.recent[class.idx()];
        let global_p = if second {
            (p.global_src_frac * 2.0).min(0.8)
        } else {
            p.global_src_frac
        };
        if q.is_empty() || self.rng_dep.chance(global_p) {
            // Global: register 0 of the class (periodically rewritten like a
            // stack pointer / loop bound — close enough to invariant).
            return Some(RegOperand {
                reg: LogReg(0),
                class,
            });
        }
        let tight = if second {
            (p.dep_tightness * 0.5).max(0.02)
        } else {
            p.dep_tightness.max(0.02)
        };
        let d = p.dep_min - 1 + self.rng_dep.geometric(tight, q.len() as u64) as usize - 1;
        Some(RegOperand {
            reg: q[d.min(q.len() - 1)],
            class,
        })
    }

    fn pick_src(&mut self, class: RegClass) -> Option<RegOperand> {
        self.pick_src2(class, false)
    }
}

/// Wrong-path micro-op source.
///
/// After a mispredicted branch the front-end keeps fetching down the wrong
/// path; those uops allocate real resources until the squash. The wrong
/// path is *plausible garbage*: same instruction mix as the thread's
/// profile, distinct PC range, random operands and cache-polluting
/// addresses within the same footprint.
pub struct WrongPathSource {
    mix: [f64; 8],
    footprint: u64,
    hot_bytes: u64,
    int_span: u64,
    fp_span: u64,
    rng: Prng,
    next_pc: u64,
}

/// Wrong-path PCs live far away from correct-path code.
const WRONG_PATH_PC_BASE: u64 = 0x8000_0000;

impl WrongPathSource {
    pub fn new(profile: &TraceProfile, seed: u64) -> Self {
        WrongPathSource {
            mix: *profile.mix_weights(),
            footprint: profile.footprint,
            hot_bytes: profile.hot_bytes,
            int_span: profile.int_reg_span as u64,
            fp_span: profile.fp_reg_span as u64,
            rng: Prng::derive(seed, 0xDEAD),
            next_pc: WRONG_PATH_PC_BASE,
        }
    }

    /// Emit one wrong-path uop.
    pub fn next_uop(&mut self) -> MicroOp {
        let pc = self.next_pc;
        self.next_pc = WRONG_PATH_PC_BASE + ((self.next_pc + 4) & 0xF_FFFF);
        let class = match self.rng.weighted(&self.mix) {
            0 => OpClass::Int,
            1 => OpClass::IntMul,
            2 => OpClass::FpSimd,
            3 => OpClass::FpDiv,
            4 => OpClass::Load,
            5 => OpClass::Store,
            // Wrong-path branches are never resolved as mispredictions —
            // emit them as plain int ops so control stays linear until the
            // squash.
            _ => OpClass::Int,
        };
        let int_reg = |rng: &mut Prng, span: u64| RegOperand {
            reg: LogReg(rng.below(span) as u8),
            class: RegClass::Int,
        };
        let fp_reg = |rng: &mut Prng, span: u64| RegOperand {
            reg: LogReg(rng.below(span) as u8),
            class: RegClass::FpSimd,
        };
        let (dest, srcs): (Option<RegOperand>, [Option<RegOperand>; 2]) = match class {
            OpClass::FpSimd | OpClass::FpDiv => (
                Some(fp_reg(&mut self.rng, self.fp_span)),
                [
                    Some(fp_reg(&mut self.rng, self.fp_span)),
                    Some(fp_reg(&mut self.rng, self.fp_span)),
                ],
            ),
            OpClass::Load => (
                Some(int_reg(&mut self.rng, self.int_span)),
                [Some(int_reg(&mut self.rng, self.int_span)), None],
            ),
            OpClass::Store => (
                None,
                [
                    Some(int_reg(&mut self.rng, self.int_span)),
                    Some(int_reg(&mut self.rng, self.int_span)),
                ],
            ),
            _ => (
                Some(int_reg(&mut self.rng, self.int_span)),
                [
                    Some(int_reg(&mut self.rng, self.int_span)),
                    Some(int_reg(&mut self.rng, self.int_span)),
                ],
            ),
        };
        let mem = if class.is_mem() {
            // Wrong paths run the same code on stale inputs: their accesses
            // have roughly the correct path's locality, not uniform noise —
            // otherwise wrong-path pollution wrecks the L1 unrealistically.
            let addr = if self.rng.chance(0.9) {
                0x1000_0000 + self.rng.below(self.hot_bytes.max(8))
            } else {
                0x1000_0000 + self.hot_bytes + self.rng.below(self.footprint.max(8))
            };
            Some(csmt_types::MemInfo { addr, size: 8 })
        } else {
            None
        };
        MicroOp {
            pc,
            class,
            dest,
            srcs,
            mem,
            branch: None,
            code_block: u32::MAX, // distinct wrong-path code region
            is_mrom: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{category_base, TraceClass};

    fn sample(cat: &str, class: TraceClass, seed: u64, n: usize) -> Vec<MicroOp> {
        let p = category_base(cat).variant(class);
        let mut t = ThreadTrace::from_profile(&p, seed);
        (0..n).map(|_| t.next_uop()).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let a = sample("ISPEC00", TraceClass::Ilp, 9, 5000);
        let b = sample("ISPEC00", TraceClass::Ilp, 9, 5000);
        assert_eq!(a, b);
        let c = sample("ISPEC00", TraceClass::Ilp, 10, 5000);
        assert_ne!(a, c);
    }

    #[test]
    fn all_uops_validate() {
        for cat in ["DH", "ISPEC00", "FSPEC00", "server", "office"] {
            for class in [TraceClass::Ilp, TraceClass::Mem] {
                for u in sample(cat, class, 3, 3000) {
                    u.validate().unwrap_or_else(|e| panic!("{cat}: {e}"));
                }
            }
        }
    }

    #[test]
    fn mix_is_respected() {
        let uops = sample("ISPEC00", TraceClass::Ilp, 1, 50_000);
        let n = uops.len() as f64;
        let frac = |pred: fn(&MicroOp) -> bool| uops.iter().filter(|u| pred(u)).count() as f64 / n;
        let loads = frac(|u| u.class == OpClass::Load);
        let branches = frac(|u| u.class.is_branch());
        let fp = frac(|u| matches!(u.class, OpClass::FpSimd | OpClass::FpDiv));
        // ISPEC00: ~24% loads, ~18% branches, ~1% fp.
        assert!((0.15..0.35).contains(&loads), "loads={loads}");
        assert!((0.08..0.30).contains(&branches), "branches={branches}");
        assert!(fp < 0.05, "fp={fp}");
    }

    #[test]
    fn fspec_is_fp_heavy() {
        let uops = sample("FSPEC00", TraceClass::Ilp, 1, 50_000);
        let fp = uops
            .iter()
            .filter(|u| matches!(u.class, OpClass::FpSimd | OpClass::FpDiv))
            .count() as f64
            / uops.len() as f64;
        assert!(fp > 0.25, "fp={fp}");
    }

    #[test]
    fn branch_targets_reference_real_blocks() {
        let p = category_base("office");
        let prog = Program::synthesize(&p, 2);
        let nblocks = prog.blocks.len() as u32;
        let mut t = ThreadTrace::new(prog, 2);
        for _ in 0..20_000 {
            let u = t.next_uop();
            if let Some(b) = u.branch {
                assert!(b.target < nblocks);
            }
        }
    }

    #[test]
    fn loops_actually_loop() {
        // In an ILP profile with long trip counts, most branch executions
        // are taken back edges.
        let uops = sample("FSPEC00", TraceClass::Ilp, 4, 50_000);
        let (taken, total) = uops
            .iter()
            .filter_map(|u| u.branch)
            .fold((0u32, 0u32), |(t, n), b| (t + b.taken as u32, n + 1));
        let ratio = taken as f64 / total as f64;
        assert!(ratio > 0.6, "taken ratio={ratio}");
    }

    #[test]
    fn mem_variant_spreads_addresses() {
        let dispersion = |uops: &[MicroOp]| {
            let addrs: Vec<u64> = uops.iter().filter_map(|u| u.mem.map(|m| m.addr)).collect();
            let min = *addrs.iter().min().unwrap();
            let max = *addrs.iter().max().unwrap();
            max - min
        };
        let ilp = sample("server", TraceClass::Ilp, 5, 30_000);
        let mem = sample("server", TraceClass::Mem, 5, 30_000);
        assert!(dispersion(&mem) > dispersion(&ilp) * 4);
    }

    #[test]
    fn sources_reference_written_registers() {
        // After warm-up, sources must be registers that appear as dests in
        // the profile's spans (plus the global reg 0).
        let p = category_base("ISPEC00");
        let mut t = ThreadTrace::from_profile(&p, 8);
        for _ in 0..10_000 {
            let u = t.next_uop();
            for s in u.srcs.into_iter().flatten() {
                let span = match s.class {
                    RegClass::Int => p.int_reg_span,
                    RegClass::FpSimd => p.fp_reg_span,
                };
                assert!(s.reg.idx() < span.max(1), "src {:?} beyond span", s);
            }
        }
    }

    #[test]
    fn wrong_path_is_deterministic_and_valid() {
        let p = category_base("server");
        let mut a = WrongPathSource::new(&p, 7);
        let mut b = WrongPathSource::new(&p, 7);
        for _ in 0..2000 {
            let ua = a.next_uop();
            let ub = b.next_uop();
            assert_eq!(ua, ub);
            ua.validate().unwrap();
            assert!(!ua.class.is_branch(), "wrong path must not branch");
            assert!(ua.pc >= WRONG_PATH_PC_BASE);
            assert_eq!(ua.code_block, u32::MAX);
        }
    }

    #[test]
    fn emitted_counter_advances() {
        let p = category_base("DH");
        let mut t = ThreadTrace::from_profile(&p, 1);
        assert_eq!(t.emitted(), 0);
        for _ in 0..100 {
            t.next_uop();
        }
        assert_eq!(t.emitted(), 100);
    }
}
