//! In-order architectural oracle.
//!
//! A [`ThreadOracle`] replays a thread's program the way a trivially
//! correct single-issue machine would — straight through the generator,
//! no speculation, no clustering — and checks the simulator's committed
//! micro-op stream against it. Because traces are a pure function of
//! `(profile, seed)`, the oracle reconstructs the exact correct-path
//! stream from the same spec the simulator was built from.
//!
//! The contract it enforces, per thread:
//!
//! * every committed non-copy uop is the *next* uop of the program — same
//!   pc, same class, in program order, with nothing skipped or duplicated
//!   (squashed correct-path uops must be refetched and re-committed in
//!   place; wrong-path uops must never commit);
//! * sequence numbers strictly increase in commit order (they are not
//!   contiguous: replayed uops are renumbered and copies consume numbers).

use crate::gen::ThreadTrace;
use crate::profile::TraceProfile;
use crate::suite::TraceSpec;
use csmt_types::OpClass;
use std::collections::HashMap;

/// Cache lines are recorded at this granularity during fast-forward.
const WARM_LINE: u64 = 64;

/// Most-recently-touched lines kept per thread in a checkpoint. Bounds
/// the artifact size; the restore-side warm budget (a slice of the L2)
/// is far smaller anyway.
const MAX_WARM_LINES: usize = 4096;

/// Memory lines touched during an architectural fast-forward, with
/// recency. A checkpoint stores the most recently touched lines so the
/// resumed simulator can pre-warm its memory hierarchy the way the
/// skipped execution would have left it.
#[derive(Debug, Default)]
pub struct WarmFootprint {
    /// line base address → last-touch tick.
    lines: HashMap<u64, u64>,
    tick: u64,
}

impl WarmFootprint {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an access of `size` bytes at `addr`.
    pub fn touch(&mut self, addr: u64, size: u64) {
        let first = addr & !(WARM_LINE - 1);
        let last = (addr + size.max(1) - 1) & !(WARM_LINE - 1);
        let mut line = first;
        loop {
            self.lines.insert(line, self.tick);
            self.tick += 1;
            if line >= last {
                break;
            }
            line += WARM_LINE;
        }
        // Keep the map bounded: when it doubles past the cap, drop the
        // oldest half. Eviction order is deterministic (ticks are unique).
        if self.lines.len() > 2 * MAX_WARM_LINES {
            let mut ticks: Vec<u64> = self.lines.values().copied().collect();
            ticks.sort_unstable();
            let cutoff = ticks[ticks.len() - MAX_WARM_LINES];
            self.lines.retain(|_, &mut t| t >= cutoff);
        }
    }

    /// The most recently touched line addresses, capped at
    /// [`MAX_WARM_LINES`], ordered oldest-touched first so warming them
    /// in order leaves the most recent lines most-recently-used.
    pub fn recent_lines(&self) -> Vec<u64> {
        let mut by_tick: Vec<(u64, u64)> = self.lines.iter().map(|(&l, &t)| (t, l)).collect();
        by_tick.sort_unstable();
        if by_tick.len() > MAX_WARM_LINES {
            by_tick.drain(..by_tick.len() - MAX_WARM_LINES);
        }
        by_tick.into_iter().map(|(_, l)| l).collect()
    }
}

/// A divergence between the simulator's committed stream and the oracle's
/// architectural replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleDivergence {
    /// Index in the thread's committed non-copy stream (0-based).
    pub index: u64,
    /// What the architectural replay expected.
    pub expected_pc: u64,
    pub expected_class: OpClass,
    /// What the simulator committed.
    pub got_pc: u64,
    pub got_class: OpClass,
    /// Human-readable description (also covers seq-order violations).
    pub detail: String,
}

impl std::fmt::Display for OracleDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "commit #{}: {}", self.index, self.detail)
    }
}

/// In-order replay of one thread's program.
pub struct ThreadOracle {
    trace: ThreadTrace,
    /// Committed non-copy uops cross-checked so far.
    position: u64,
    /// Last committed sequence number (copies included).
    last_seq: Option<u64>,
}

impl ThreadOracle {
    pub fn new(profile: &TraceProfile, seed: u64) -> Self {
        ThreadOracle {
            trace: ThreadTrace::from_profile(profile, seed),
            position: 0,
            last_seq: None,
        }
    }

    pub fn from_spec(spec: &TraceSpec) -> Self {
        Self::new(&spec.profile, spec.seed)
    }

    /// Committed non-copy uops cross-checked so far.
    pub fn committed(&self) -> u64 {
        self.position
    }

    /// Architecturally fast-forward `n` uops: replay the program in
    /// order without checking anything, recording touched memory lines
    /// into `footprint`. Afterwards the oracle expects commit `n` as the
    /// next uop — exactly the state a detailed simulator reaches after
    /// committing `n` uops of this thread.
    pub fn fast_forward(&mut self, n: u64, footprint: &mut WarmFootprint) {
        for _ in 0..n {
            let u = self.trace.next_uop();
            if let Some(m) = u.mem {
                footprint.touch(m.addr, m.size as u64);
            }
            self.position += 1;
        }
    }

    /// Check that sequence numbers strictly increase in commit order.
    /// Called for *every* committed uop, copies included (copies are
    /// numbered in the same per-thread space as the uops they feed).
    pub fn expect_seq(&mut self, seq: u64) -> Result<(), OracleDivergence> {
        if let Some(prev) = self.last_seq {
            if seq <= prev {
                return Err(self.divergence(format!(
                    "sequence numbers not strictly increasing: {seq} after {prev}"
                )));
            }
        }
        self.last_seq = Some(seq);
        Ok(())
    }

    /// Check the next committed non-copy uop against the replay.
    pub fn expect_next(&mut self, pc: u64, class: OpClass) -> Result<(), OracleDivergence> {
        let want = self.trace.next_uop();
        if want.pc != pc || want.class != class {
            let d = OracleDivergence {
                index: self.position,
                expected_pc: want.pc,
                expected_class: want.class,
                got_pc: pc,
                got_class: class,
                detail: format!(
                    "expected {:?}@{:#x}, simulator committed {:?}@{:#x}",
                    want.class, want.pc, class, pc
                ),
            };
            return Err(d);
        }
        self.position += 1;
        Ok(())
    }

    fn divergence(&self, detail: String) -> OracleDivergence {
        // pc/class fields are not meaningful for ordering violations;
        // `Copy` never appears in a trace, making the filler unambiguous.
        OracleDivergence {
            index: self.position,
            expected_pc: 0,
            expected_class: OpClass::Copy,
            got_pc: 0,
            got_class: OpClass::Copy,
            detail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn replay_matches_itself() {
        let spec = &suite::suite()[0].traces[0];
        let mut a = ThreadOracle::from_spec(spec);
        let mut b = ThreadTrace::from_profile(&spec.profile, spec.seed);
        for i in 0..5_000 {
            let u = b.next_uop();
            a.expect_seq(i).unwrap();
            a.expect_next(u.pc, u.class).unwrap();
        }
        assert_eq!(a.committed(), 5_000);
    }

    #[test]
    fn detects_skipped_uop() {
        let spec = &suite::suite()[0].traces[0];
        let mut oracle = ThreadOracle::from_spec(spec);
        let mut stream = ThreadTrace::from_profile(&spec.profile, spec.seed);
        let _skipped = stream.next_uop();
        let second = stream.next_uop();
        // First uop never committed → a divergence as soon as the stream
        // continues (same program, shifted by one).
        let mut diverged = false;
        let mut u = second;
        for _ in 0..64 {
            if oracle.expect_next(u.pc, u.class).is_err() {
                diverged = true;
                break;
            }
            u = stream.next_uop();
        }
        assert!(diverged, "skipping a uop must eventually diverge");
    }

    #[test]
    fn fast_forward_lands_exactly_at_offset() {
        let spec = &suite::suite()[0].traces[0];
        let mut ff = ThreadOracle::from_spec(spec);
        let mut fp = WarmFootprint::new();
        ff.fast_forward(1234, &mut fp);
        assert_eq!(ff.committed(), 1234);
        // The fast-forwarded oracle continues exactly where a straight
        // replay is at uop 1234.
        let mut straight = ThreadTrace::from_profile(&spec.profile, spec.seed);
        for _ in 0..1234 {
            straight.next_uop();
        }
        for _ in 0..500 {
            let u = straight.next_uop();
            ff.expect_next(u.pc, u.class).unwrap();
        }
    }

    #[test]
    fn warm_footprint_is_bounded_and_recency_ordered() {
        let spec = &suite::suite()[0].traces[1]; // mem-bound: large footprint
        let mut ff = ThreadOracle::from_spec(spec);
        let mut fp = WarmFootprint::new();
        ff.fast_forward(200_000, &mut fp);
        let lines = fp.recent_lines();
        assert!(!lines.is_empty());
        assert!(lines.len() <= 4096, "footprint capped, got {}", lines.len());
        // Deterministic: same replay, same lines in the same order.
        let mut ff2 = ThreadOracle::from_spec(spec);
        let mut fp2 = WarmFootprint::new();
        ff2.fast_forward(200_000, &mut fp2);
        assert_eq!(lines, fp2.recent_lines());
    }

    #[test]
    fn detects_seq_regression() {
        let spec = &suite::suite()[0].traces[0];
        let mut oracle = ThreadOracle::from_spec(spec);
        oracle.expect_seq(10).unwrap();
        assert!(oracle.expect_seq(10).is_err(), "equal seq repeats");
        let mut oracle = ThreadOracle::from_spec(spec);
        oracle.expect_seq(10).unwrap();
        assert!(oracle.expect_seq(3).is_err(), "seq went backwards");
    }
}
