//! # csmt-trace
//!
//! Synthetic micro-op trace generation standing in for the paper's pool of
//! 120 proprietary 2-threaded x86 traces (Table 2).
//!
//! The paper's traces come from Intel production workloads (SPEC2K, TPC,
//! Sysmark, digital-home, multimedia, office, ...). We cannot obtain them;
//! per DESIGN.md the substitution is a *profile-driven synthetic program
//! model*: each category is described by a [`profile::TraceProfile`]
//! (instruction mix, dependency-distance distribution, memory footprint and
//! locality, branch predictability, code footprint, register pressure), a
//! static program is synthesized from the profile, and a [`gen::ThreadTrace`]
//! walks that program emitting an infinite micro-op stream.
//!
//! The resource-assignment schemes under study react to trace
//! *characteristics* — issue-queue pressure, L2 miss rate, register-file
//! pressure per class, ILP — not to program semantics, so a synthetic stream
//! with the right characteristics exercises the same mechanisms.
//!
//! Traces are deterministic: the stream is a pure function of
//! `(profile, seed)`.

#![allow(clippy::needless_range_loop)]

pub mod gen;
pub mod io;
pub mod oracle;
pub mod profile;
pub mod program;
pub mod stats;
pub mod stream;
pub mod suite;

pub use gen::{ThreadTrace, WrongPathSource};
pub use io::{record_trace, TraceReader, TraceWriter};
pub use oracle::{OracleDivergence, ThreadOracle, WarmFootprint};
pub use profile::{TraceClass, TraceProfile};
pub use program::Program;
pub use stats::{characterize, characterize_trace, TraceStats};
pub use stream::{SharedStream, StreamReader};
pub use suite::{bundles, suite, Bundle, Category, Workload, WorkloadKind};
