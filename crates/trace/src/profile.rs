//! Trace profiles: the tunable characteristics a synthetic trace is built
//! from, and the per-category profiles mirroring Table 2.
//!
//! The classification follows the paper (§4.1): every category provides
//! *highly parallel* (ILP) and *memory-bounded* (MEM) single-thread traces,
//! in the style of Tullsen & Brown's workload taxonomy.

use serde::{Deserialize, Serialize};

/// Whether a single-thread trace is compute-parallel or memory-bounded —
/// the per-trace half of the ILP/MEM/MIX workload taxonomy of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceClass {
    /// Highly parallel: large dependency distances, cache-resident working
    /// set, predictable control flow.
    Ilp,
    /// Memory-bounded: working set far beyond L2, frequent long-latency
    /// misses.
    Mem,
}

impl std::fmt::Display for TraceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceClass::Ilp => write!(f, "ilp"),
            TraceClass::Mem => write!(f, "mem"),
        }
    }
}

/// All knobs of the synthetic program/trace model.
///
/// Fractions in `mix` need not sum to one — they are weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Human-readable profile name (category + variant).
    pub name: String,

    // ---- instruction mix weights ----
    /// `[int, int_mul, fp_simd, fp_div, load, store, branch, branch_ind]`.
    pub mix: [f64; 8],

    // ---- instruction-level parallelism ----
    /// Parameter of the geometric dependency-distance distribution: the
    /// probability that a source refers to the most recent producer.
    /// High (≈0.8) ⇒ tight chains, low ILP; low (≈0.15) ⇒ wide dataflow.
    pub dep_tightness: f64,
    /// Probability a source operand is a long-lived "global" value (loop
    /// invariant) rather than a recent producer. Globals never serialize.
    pub global_src_frac: f64,
    /// Minimum dependency distance (in producers of the class). Unrolled /
    /// software-pipelined loops rarely consume the immediately preceding
    /// result; a floor above 1 is what makes a trace genuinely wide.
    pub dep_min: usize,

    // ---- memory behaviour ----
    /// Total data footprint in bytes. Regions are carved from it.
    pub footprint: u64,
    /// Fraction of accesses that hit a small hot region (L1-resident).
    pub hot_frac: f64,
    /// Size of the hot region in bytes.
    pub hot_bytes: u64,
    /// Fraction of the remaining accesses that are sequential/strided
    /// (prefetch-friendly line reuse) rather than random in the footprint.
    pub stride_frac: f64,

    // ---- control flow ----
    /// Average basic-block length in uops (min 3).
    pub block_len: f64,
    /// Mean loop trip count (geometric); high values make back-edge
    /// branches very predictable.
    pub mean_trip: f64,
    /// Fraction of block-exit branches that are effectively random
    /// (data-dependent, unpredictable by gshare).
    pub chaotic_branch_frac: f64,
    /// Number of static basic blocks — the code footprint seen by the
    /// trace cache (blocks × block_len uops).
    pub static_blocks: usize,
    /// Fraction of uops sequenced from the MROM (complex macro-ops).
    pub mrom_frac: f64,

    // ---- register pressure ----
    /// How many distinct integer logical destination registers the program
    /// cycles through (2..=NUM_LOG_REGS). More live registers ⇒ more
    /// physical-register pressure per in-flight instruction window.
    pub int_reg_span: usize,
    /// Same for the FP/SIMD file.
    pub fp_reg_span: usize,
    /// Probability that a strided access pattern walks line-granular
    /// (64-byte stride: every access a fresh cache line — independent
    /// L1-missing loads, the memory-level-parallelism source) rather than
    /// word-granular (dense reuse within a line).
    pub stride_line_frac: f64,
}

impl TraceProfile {
    /// A neutral, balanced profile. Tests start from here and tweak.
    pub fn balanced(name: &str) -> Self {
        TraceProfile {
            name: name.to_string(),
            //    int   imul  fp    fdiv  load  store br    ibr
            mix: [0.36, 0.02, 0.10, 0.01, 0.25, 0.11, 0.13, 0.02],
            dep_tightness: 0.45,
            global_src_frac: 0.25,
            dep_min: 1,
            footprint: 8 << 20,
            hot_frac: 0.90,
            hot_bytes: 16 << 10,
            stride_frac: 0.5,
            block_len: 8.0,
            mean_trip: 12.0,
            chaotic_branch_frac: 0.08,
            static_blocks: 400,
            mrom_frac: 0.01,
            int_reg_span: 12,
            fp_reg_span: 8,
            stride_line_frac: 0.3,
        }
    }

    /// Make the profile memory-bounded: huge, poorly localized footprint
    /// and chain-y dataflow (pointer chasing serializes the misses).
    pub fn memory_bound(mut self) -> Self {
        self.name.push_str("-mem");
        self.footprint = 128 << 20; // far beyond the 4 MB L2
        self.hot_frac = 0.50;
        self.hot_bytes = 8 << 10;
        self.stride_frac = 0.10;
        // Pointer-chasing style: consumers hang directly off the missing
        // loads, so dependent work piles up in the issue queues for the
        // whole miss — the starvation scenario the schemes manage.
        self.dep_tightness = 0.72;
        self.global_src_frac = 0.15;
        self
    }

    /// Make the profile highly parallel: wide dataflow, predictable control
    /// flow, and a working set sized to produce L1-missing / L2-hitting
    /// loads with high memory-level parallelism — the kind of thread that
    /// profits from a large combined instruction window.
    pub fn highly_parallel(mut self) -> Self {
        self.name.push_str("-ilp");
        // Small enough that checkpoint warming makes the thread truly
        // compute-bound: 8 stream regions of 128 KB plus the hot set fit
        // the warmed half of the L2 alongside a second thread.
        self.footprint = 1 << 20;
        self.hot_frac = 0.85;
        self.hot_bytes = 24 << 10;
        self.stride_frac = 0.95;
        self.stride_line_frac = 0.85; // line-granular streams: MLP source
        self.dep_tightness = 0.10;
        self.global_src_frac = 0.35;
        self.dep_min = 5;
        self.chaotic_branch_frac = 0.015;
        self.mean_trip = 60.0;
        self
    }

    /// Stretch the profile to a long-horizon workload for sampled
    /// simulation: a much larger static code footprint (so execution
    /// moves between distinct block neighbourhoods over a long run —
    /// the phase behaviour sampling exists to capture) and longer trip
    /// counts. The dynamic stream stays infinite either way; "long"
    /// here means the program does not re-converge to one steady state
    /// within a short measurement window.
    pub fn long_horizon(mut self) -> Self {
        self.name.push_str("-long");
        self.static_blocks = (self.static_blocks * 4).min(8000);
        self.mean_trip = (self.mean_trip * 1.5).min(96.0);
        self.footprint = (self.footprint * 2).min(256 << 20);
        self
    }

    /// Apply the ILP/MEM variant.
    pub fn variant(self, class: TraceClass) -> Self {
        match class {
            TraceClass::Ilp => self.highly_parallel(),
            TraceClass::Mem => self.memory_bound(),
        }
    }

    /// Probability weights over op classes in emission order
    /// `[Int, IntMul, FpSimd, FpDiv, Load, Store, Branch, BranchIndirect]`.
    pub fn mix_weights(&self) -> &[f64; 8] {
        &self.mix
    }

    /// Fraction of value-producing uops whose destination is FP/SIMD — the
    /// first-order driver of FP register-file pressure.
    pub fn fp_dest_share(&self) -> f64 {
        let fp = self.mix[2] + self.mix[3];
        let int = self.mix[0] + self.mix[1] + self.mix[4]; // loads default to int dests
        if fp + int == 0.0 {
            0.0
        } else {
            fp / (fp + int)
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.mix.iter().any(|&w| w < 0.0) || self.mix.iter().sum::<f64>() <= 0.0 {
            return Err(format!("{}: invalid mix weights", self.name));
        }
        if !(0.0..=1.0).contains(&self.stride_line_frac)
            || !(0.0..=1.0).contains(&self.dep_tightness)
            || !(0.0..=1.0).contains(&self.global_src_frac)
            || !(0.0..=1.0).contains(&self.hot_frac)
            || !(0.0..=1.0).contains(&self.stride_frac)
            || !(0.0..=1.0).contains(&self.chaotic_branch_frac)
            || !(0.0..=1.0).contains(&self.mrom_frac)
        {
            return Err(format!("{}: probability out of [0,1]", self.name));
        }
        if self.footprint < 4096 || self.hot_bytes < 256 {
            return Err(format!("{}: footprint too small", self.name));
        }
        if self.block_len < 3.0 || self.mean_trip < 1.0 {
            return Err(format!("{}: degenerate control flow", self.name));
        }
        if self.static_blocks < 2 {
            return Err(format!("{}: need at least 2 static blocks", self.name));
        }
        if self.dep_min < 1 || self.dep_min > 16 {
            return Err(format!("{}: dep_min out of range", self.name));
        }
        let max_span = csmt_types::NUM_LOG_REGS;
        if self.int_reg_span < 2
            || self.int_reg_span > max_span
            || self.fp_reg_span < 2
            || self.fp_reg_span > max_span
        {
            return Err(format!("{}: register span out of range", self.name));
        }
        Ok(())
    }
}

/// Category base profiles (before the ILP/MEM variant is applied).
///
/// The shapes are chosen so each category stresses what the paper says it
/// stresses: ISPEC00 pressures the integer register file (Figure 6 shows up
/// to +14% from partitioning it), FSPEC00 pressures the FP/SIMD file, server
/// traces are L2-miss bound, multimedia/DH are SIMD-streaming, office /
/// productivity are branchy integer codes.
pub fn category_base(category: &str) -> TraceProfile {
    let mut p = TraceProfile::balanced(category);
    match category {
        "DH" => {
            p.mix = [0.22, 0.02, 0.30, 0.01, 0.24, 0.12, 0.08, 0.01];
            p.stride_frac = 0.9;
            p.fp_reg_span = 14;
            p.int_reg_span = 8;
            p.static_blocks = 160;
            p.mean_trip = 48.0;
            p.chaotic_branch_frac = 0.03;
        }
        "FSPEC00" => {
            p.mix = [0.18, 0.02, 0.34, 0.03, 0.26, 0.09, 0.07, 0.01];
            p.fp_reg_span = 20;
            p.int_reg_span = 8;
            p.dep_tightness = 0.30;
            p.mean_trip = 64.0;
            p.chaotic_branch_frac = 0.02;
            p.static_blocks = 220;
        }
        "ISPEC00" => {
            p.mix = [0.44, 0.03, 0.01, 0.00, 0.24, 0.10, 0.16, 0.02];
            p.int_reg_span = 26; // heavy integer register pressure
            p.fp_reg_span = 2;
            p.dep_tightness = 0.55;
            p.chaotic_branch_frac = 0.12;
            p.static_blocks = 900;
            p.mean_trip = 9.0;
        }
        "multimedia" => {
            p.mix = [0.24, 0.02, 0.28, 0.01, 0.23, 0.12, 0.09, 0.01];
            p.stride_frac = 0.85;
            p.fp_reg_span = 16;
            p.mean_trip = 32.0;
            p.static_blocks = 260;
        }
        "office" => {
            p.mix = [0.42, 0.01, 0.03, 0.00, 0.27, 0.11, 0.14, 0.02];
            p.int_reg_span = 16;
            p.fp_reg_span = 4;
            p.chaotic_branch_frac = 0.14;
            p.static_blocks = 1400;
            p.mean_trip = 6.0;
            p.mrom_frac = 0.03;
        }
        "productivity" => {
            p.mix = [0.40, 0.02, 0.06, 0.00, 0.26, 0.11, 0.13, 0.02];
            p.int_reg_span = 14;
            p.fp_reg_span = 6;
            p.chaotic_branch_frac = 0.11;
            p.static_blocks = 1000;
            p.mean_trip = 8.0;
            p.mrom_frac = 0.02;
        }
        "server" => {
            p.mix = [0.38, 0.01, 0.02, 0.00, 0.30, 0.13, 0.14, 0.02];
            p.int_reg_span = 14;
            p.fp_reg_span = 2;
            p.footprint = 96 << 20;
            p.hot_frac = 0.65;
            p.chaotic_branch_frac = 0.13;
            p.static_blocks = 2000;
            p.mean_trip = 5.0;
            p.mrom_frac = 0.03;
        }
        "workstation" => {
            p.mix = [0.28, 0.02, 0.22, 0.02, 0.25, 0.10, 0.10, 0.01];
            p.int_reg_span = 12;
            p.fp_reg_span = 14;
            p.footprint = 32 << 20;
            p.mean_trip = 20.0;
            p.static_blocks = 500;
        }
        "miscellanea" => {
            p.mix = [0.33, 0.02, 0.16, 0.01, 0.25, 0.11, 0.11, 0.01];
            p.int_reg_span = 14;
            p.fp_reg_span = 10;
            p.stride_frac = 0.7;
            p.static_blocks = 450;
        }
        other => {
            p.name = other.to_string();
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    const CATEGORIES: [&str; 9] = [
        "DH",
        "FSPEC00",
        "ISPEC00",
        "multimedia",
        "office",
        "productivity",
        "server",
        "workstation",
        "miscellanea",
    ];

    #[test]
    fn all_category_bases_validate() {
        for c in CATEGORIES {
            category_base(c).validate().unwrap();
            category_base(c)
                .variant(TraceClass::Ilp)
                .validate()
                .unwrap();
            category_base(c)
                .variant(TraceClass::Mem)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn mem_variant_is_bigger_and_less_local() {
        for c in CATEGORIES {
            let base = category_base(c);
            let mem = base.clone().variant(TraceClass::Mem);
            let ilp = base.clone().variant(TraceClass::Ilp);
            assert!(mem.footprint > ilp.footprint, "{c}");
            assert!(mem.hot_frac < ilp.hot_frac, "{c}");
            assert!(ilp.dep_tightness < mem.dep_tightness, "{c}");
        }
    }

    #[test]
    fn ispec_pressures_int_file_fspec_pressures_fp_file() {
        let ispec = category_base("ISPEC00");
        let fspec = category_base("FSPEC00");
        assert!(ispec.fp_dest_share() < 0.05);
        assert!(fspec.fp_dest_share() > 0.30);
        assert!(ispec.int_reg_span > fspec.int_reg_span);
        assert!(fspec.fp_reg_span > ispec.fp_reg_span);
    }

    #[test]
    fn variant_names_are_tagged() {
        let p = category_base("DH").variant(TraceClass::Ilp);
        assert!(p.name.ends_with("-ilp"));
        let p = category_base("DH").variant(TraceClass::Mem);
        assert!(p.name.ends_with("-mem"));
    }

    #[test]
    fn validate_rejects_bad_profiles() {
        let mut p = TraceProfile::balanced("bad");
        p.mix = [0.0; 8];
        assert!(p.validate().is_err());

        let mut p = TraceProfile::balanced("bad");
        p.dep_tightness = 1.5;
        assert!(p.validate().is_err());

        let mut p = TraceProfile::balanced("bad");
        p.block_len = 1.0;
        assert!(p.validate().is_err());

        let mut p = TraceProfile::balanced("bad");
        p.int_reg_span = 1;
        assert!(p.validate().is_err());

        let mut p = TraceProfile::balanced("bad");
        p.int_reg_span = csmt_types::NUM_LOG_REGS + 1;
        assert!(p.validate().is_err());
    }
}
