//! The perf-trajectory measurements, exposed as criterion benches.
//!
//! These run exactly the measurements behind `csmt-experiments bench`
//! (the harness that seeds `BENCH_3.json`), so `cargo bench --bench perf`
//! and the CLI agree on what "the fig2 slice" and "the cycle loop" mean.

use criterion::{criterion_group, criterion_main, Criterion};
use csmt_experiments::bench::{run, QUICK_SCALE};
use std::hint::black_box;

fn perf_harness(c: &mut Criterion) {
    c.bench_function("bench_quick_harness", |b| {
        b.iter(|| black_box(run(QUICK_SCALE, true, false, 1)))
    });
}

criterion_group!(perf, perf_harness);
criterion_main!(perf);
