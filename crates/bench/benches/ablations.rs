//! Ablation benches for the design choices DESIGN.md calls out: steering
//! balance threshold (A1), CDPRF adaptation interval (A2) and the
//! inter-cluster link fabric (A3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use csmt_bench::{run, workload};
use csmt_types::{MachineConfig, RegFileSchemeKind, SchemeKind};

fn ablation_steering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_steering");
    g.sample_size(10);
    let w = workload("mixes/mix.2.2");
    for threshold in [2usize, 6, 24] {
        g.bench_function(format!("thr{threshold}"), |b| {
            b.iter_batched(
                || MachineConfig {
                    steer_imbalance_threshold: threshold,
                    ..MachineConfig::iq_study(32)
                },
                |cfg| run(&w, SchemeKind::Cssp, RegFileSchemeKind::Shared, cfg),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn ablation_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_interval");
    g.sample_size(10);
    let w = workload("ISPEC-FSPEC/mix.2.1");
    for shift in [10u32, 13, 15] {
        g.bench_function(format!("2^{shift}"), |b| {
            b.iter_batched(
                || MachineConfig {
                    cdprf_interval: 1 << shift,
                    ..MachineConfig::rf_study(64)
                },
                |cfg| run(&w, SchemeKind::Cssp, RegFileSchemeKind::Cdprf, cfg),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn ablation_links(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_links");
    g.sample_size(10);
    let w = workload("FSPEC00/ilp.2.1");
    for (links, latency) in [(1usize, 1u64), (2, 1), (2, 6)] {
        g.bench_function(format!("{links}links_{latency}cy"), |b| {
            b.iter_batched(
                || MachineConfig {
                    num_links: links,
                    link_latency: latency,
                    ..MachineConfig::iq_study(32)
                },
                |cfg| run(&w, SchemeKind::Cssp, RegFileSchemeKind::Shared, cfg),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_steering,
    ablation_interval,
    ablation_links
);
criterion_main!(ablations);
