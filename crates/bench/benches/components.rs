//! Component micro-benchmarks: how fast are the substrates the simulator
//! is built from? Useful when optimizing the cycle loop.

use criterion::{criterion_group, criterion_main, Criterion};
use csmt_frontend::Gshare;
use csmt_mem::{MemHierarchy, Mob, SetAssocCache};
use csmt_trace::profile::{category_base, TraceClass};
use csmt_trace::ThreadTrace;
use csmt_types::{MachineConfig, Prng, ThreadId};
use std::hint::black_box;

fn trace_generation(c: &mut Criterion) {
    let profile = category_base("ISPEC00").variant(TraceClass::Ilp);
    let mut t = ThreadTrace::from_profile(&profile, 1);
    c.bench_function("trace_gen_1k_uops", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(t.next_uop());
            }
        })
    });
}

fn cache_access(c: &mut Criterion) {
    let mut cache = SetAssocCache::new(32 * 1024, 2, 64);
    let mut rng = Prng::new(7);
    c.bench_function("l1_access_1k", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(cache.access(rng.below(1 << 20)));
            }
        })
    });
}

fn hierarchy_load(c: &mut Criterion) {
    let mut mem = MemHierarchy::new(&MachineConfig::baseline());
    let mut rng = Prng::new(9);
    let mut now = 0u64;
    c.bench_function("hierarchy_load_1k", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                now += 1;
                black_box(mem.load(now, rng.below(8 << 20)));
            }
        })
    });
}

fn gshare_predict(c: &mut Criterion) {
    let mut g = Gshare::new(32 * 1024);
    let mut rng = Prng::new(11);
    c.bench_function("gshare_update_1k", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                black_box(g.update(ThreadId(0), i * 4, rng.chance(0.7)));
            }
        })
    });
}

fn mob_check(c: &mut Criterion) {
    c.bench_function("mob_alloc_check_release_256", |b| {
        b.iter(|| {
            let mut mob = Mob::new(128);
            let mut handles = Vec::new();
            for s in 0..64u64 {
                let is_store = s % 3 == 0;
                let h = mob.alloc(ThreadId(0), is_store, s).unwrap();
                mob.set_addr(h, s * 8, 8);
                if is_store {
                    mob.set_store_data_ready(h);
                } else {
                    black_box(mob.check_load(h));
                }
                handles.push(h);
            }
            for h in handles {
                mob.release(h);
            }
        })
    });
}

fn full_simulation_cycle_rate(c: &mut Criterion) {
    use csmt_bench::{run, workload};
    use csmt_types::RegFileSchemeKind as RF;
    use csmt_types::SchemeKind as IQ;
    let w = workload("office/ilp.2.1");
    c.bench_function("simulate_2k_commits", |b| {
        b.iter(|| black_box(run(&w, IQ::Cssp, RF::Cdprf, MachineConfig::rf_study(64))))
    });
}

criterion_group!(
    components,
    trace_generation,
    cache_access,
    hierarchy_load,
    gshare_predict,
    mob_check,
    full_simulation_cycle_rate
);
criterion_main!(components);
