//! One Criterion group per reproduced figure: times a representative slice
//! of each figure's simulation grid.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use csmt_bench::{run, workload};
use csmt_types::{MachineConfig, RegFileSchemeKind, SchemeKind};

fn fig2_iq_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_iq_throughput");
    g.sample_size(10);
    let w = workload("mixes/mix.2.1");
    for iq in [32usize, 64] {
        for scheme in [SchemeKind::Icount, SchemeKind::Cssp, SchemeKind::Pc] {
            g.bench_function(format!("{scheme}/iq{iq}"), |b| {
                b.iter_batched(
                    || MachineConfig::iq_study(iq),
                    |cfg| run(&w, scheme, RegFileSchemeKind::Shared, cfg),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

fn fig3_copies(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_copies");
    g.sample_size(10);
    let w = workload("DH/ilp.2.1");
    for scheme in [SchemeKind::Icount, SchemeKind::Cssp, SchemeKind::Pc] {
        g.bench_function(scheme.name(), |b| {
            b.iter_batched(
                || MachineConfig::iq_study(32),
                |cfg| {
                    let r = run(&w, scheme, RegFileSchemeKind::Shared, cfg);
                    r.copies_per_retired()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn fig4_iq_stalls(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_iq_stalls");
    g.sample_size(10);
    let w = workload("server/mem.2.1");
    for scheme in [SchemeKind::Icount, SchemeKind::Stall, SchemeKind::FlushPlus] {
        g.bench_function(scheme.name(), |b| {
            b.iter_batched(
                || MachineConfig::iq_study(32),
                |cfg| {
                    let r = run(&w, scheme, RegFileSchemeKind::Shared, cfg);
                    r.iq_stalls_per_retired()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn fig5_imbalance(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_imbalance");
    g.sample_size(10);
    let w = workload("multimedia/ilp.2.1");
    for scheme in [
        SchemeKind::Icount,
        SchemeKind::Cisp,
        SchemeKind::Cssp,
        SchemeKind::Pc,
    ] {
        g.bench_function(scheme.name(), |b| {
            b.iter_batched(
                || MachineConfig::iq_study(32),
                |cfg| {
                    let r = run(&w, scheme, RegFileSchemeKind::Shared, cfg);
                    r.imbalance_score()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn fig6_rf_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_rf_throughput");
    g.sample_size(10);
    let w = workload("ISPEC00/ilp.2.1");
    for regs in [64usize, 128] {
        for rf in [
            RegFileSchemeKind::Shared,
            RegFileSchemeKind::Cssprf,
            RegFileSchemeKind::Cisprf,
        ] {
            g.bench_function(format!("{rf}/{regs}"), |b| {
                b.iter_batched(
                    || MachineConfig::rf_study(regs),
                    |cfg| run(&w, SchemeKind::Cssp, rf, cfg),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

fn fig9_cdprf(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_cdprf");
    g.sample_size(10);
    let w = workload("ISPEC-FSPEC/mix.2.1");
    for rf in [
        RegFileSchemeKind::Shared,
        RegFileSchemeKind::Cssprf,
        RegFileSchemeKind::Cisprf,
        RegFileSchemeKind::Cdprf,
    ] {
        g.bench_function(rf.name(), |b| {
            b.iter_batched(
                || MachineConfig::rf_study(64),
                |cfg| run(&w, SchemeKind::Cssp, rf, cfg),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn fig10_fairness(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_fairness");
    g.sample_size(10);
    let w = workload("ISPEC-FSPEC/mix.2.2");
    // Fairness needs the SMT run plus both single-thread baselines.
    g.bench_function("cdprf_vs_alone", |b| {
        b.iter_batched(
            || MachineConfig::rf_study(64),
            |cfg| {
                let smt = run(&w, SchemeKind::Cssp, RegFileSchemeKind::Cdprf, cfg.clone());
                let alone: Vec<f64> = w
                    .traces
                    .iter()
                    .map(|spec| {
                        let mut sim = csmt_core::Simulator::new(
                            cfg.clone(),
                            SchemeKind::Icount,
                            RegFileSchemeKind::Shared,
                            std::slice::from_ref(spec),
                        );
                        sim.run_with_warmup(
                            csmt_bench::BENCH_WARMUP,
                            csmt_bench::BENCH_TARGET,
                            10_000_000,
                        )
                        .ipc(csmt_types::ThreadId(0))
                    })
                    .collect();
                csmt_core::fairness(
                    [
                        smt.ipc(csmt_types::ThreadId(0)),
                        smt.ipc(csmt_types::ThreadId(1)),
                    ],
                    [alone[0], alone[1]],
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    figures,
    fig2_iq_throughput,
    fig3_copies,
    fig4_iq_stalls,
    fig5_imbalance,
    fig6_rf_throughput,
    fig9_cdprf,
    fig10_fairness
);
criterion_main!(figures);
