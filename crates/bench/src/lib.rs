//! # csmt-bench
//!
//! Criterion benchmarks, one group per reproduced figure plus the ablation
//! studies and component micro-benchmarks. Each figure bench simulates a
//! representative slice of the figure's (workload × scheme × config) grid,
//! so `cargo bench` both times the simulator and regenerates the figure's
//! data points at reduced scale. The full-scale regeneration lives in the
//! `csmt-experiments` CLI (`cargo run -p csmt-experiments --release -- all`).

use csmt_core::metrics::SimResult;
use csmt_core::Simulator;
use csmt_trace::suite::{suite, Workload};
use csmt_types::{MachineConfig, RegFileSchemeKind, SchemeKind};

/// Committed uops per thread per bench iteration (small: Criterion runs
/// each closure many times).
pub const BENCH_TARGET: u64 = 2_000;
pub const BENCH_WARMUP: u64 = 500;

/// Look up a suite workload by name.
pub fn workload(name: &str) -> Workload {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name} not in suite"))
}

/// One measured simulation run, as used by every figure bench.
pub fn run(w: &Workload, iq: SchemeKind, rf: RegFileSchemeKind, cfg: MachineConfig) -> SimResult {
    let mut sim = Simulator::new(cfg, iq, rf, &w.traces);
    sim.run_with_warmup(BENCH_WARMUP, BENCH_TARGET, 10_000_000)
}
