//! Hardware prefetchers.
//!
//! Table 1 does not list a prefetcher, so the default configuration runs
//! without one — but the era's parts (the Pentium 4 the front-end models)
//! shipped next-line and stride prefetchers, and their interaction with
//! the schemes is a natural question (a prefetcher hides exactly the L2
//! misses that Stall/Flush+ key on). Two classic designs are provided:
//!
//! * [`PrefetchKind::NextLine`] — on every L1 miss, fetch line N+1 into L2;
//! * [`PrefetchKind::Stride`] — a PC-less stride table over miss addresses
//!   (RPT-style): detects constant-stride miss streams and runs ahead.

use serde::{Deserialize, Serialize};

/// Prefetcher selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetchKind {
    /// No prefetching (the Table-1 baseline).
    #[default]
    None,
    /// Next-line prefetch on every L1 miss.
    NextLine,
    /// Stride detection over the global miss stream, degree 2.
    Stride,
}

impl std::fmt::Display for PrefetchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefetchKind::None => write!(f, "none"),
            PrefetchKind::NextLine => write!(f, "next-line"),
            PrefetchKind::Stride => write!(f, "stride"),
        }
    }
}

/// Stride-detector entry.
#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// The prefetch engine: decides, per L1 miss, which extra lines to pull.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    kind: PrefetchKind,
    /// Small direct-mapped stride table indexed by line-address hash.
    table: Vec<StrideEntry>,
    pub issued: u64,
}

impl Prefetcher {
    pub fn new(kind: PrefetchKind) -> Self {
        Prefetcher {
            kind,
            table: vec![StrideEntry::default(); 64],
            issued: 0,
        }
    }

    pub fn kind(&self) -> PrefetchKind {
        self.kind
    }

    /// Observe an L1 miss to `line` (line number, not byte address) and
    /// return the lines to prefetch (possibly empty).
    pub fn on_miss(&mut self, line: u64) -> Vec<u64> {
        match self.kind {
            PrefetchKind::None => Vec::new(),
            PrefetchKind::NextLine => {
                self.issued += 1;
                vec![line + 1]
            }
            PrefetchKind::Stride => {
                // Region-hashed entry: nearby misses share a detector. The
                // table length is a power of two, so the hash is a mask.
                debug_assert!(self.table.len().is_power_of_two());
                let idx = ((line >> 6) & (self.table.len() as u64 - 1)) as usize;
                let e = &mut self.table[idx];
                let stride = line as i64 - e.last_line as i64;
                if stride != 0 && stride == e.stride {
                    e.confidence = (e.confidence + 1).min(3);
                } else {
                    e.confidence = e.confidence.saturating_sub(1);
                    e.stride = stride;
                }
                e.last_line = line;
                if e.confidence >= 2 && e.stride != 0 {
                    self.issued += 2;
                    let s = e.stride;
                    vec![(line as i64 + s) as u64, (line as i64 + 2 * s) as u64]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_prefetches() {
        let mut p = Prefetcher::new(PrefetchKind::None);
        for l in 0..100 {
            assert!(p.on_miss(l).is_empty());
        }
        assert_eq!(p.issued, 0);
    }

    #[test]
    fn next_line_fetches_successor() {
        let mut p = Prefetcher::new(PrefetchKind::NextLine);
        assert_eq!(p.on_miss(10), vec![11]);
        assert_eq!(p.on_miss(500), vec![501]);
        assert_eq!(p.issued, 2);
    }

    #[test]
    fn stride_locks_onto_constant_stride() {
        let mut p = Prefetcher::new(PrefetchKind::Stride);
        // Misses at stride 3: 0, 3, 6, 9, ... confidence builds, then
        // prefetches line+3 and line+6.
        let mut fired = false;
        for i in 0..10u64 {
            let line = i * 3;
            let out = p.on_miss(line);
            if !out.is_empty() {
                assert_eq!(out, vec![line + 3, line + 6]);
                fired = true;
            }
        }
        assert!(fired, "stride detector never locked on");
    }

    #[test]
    fn stride_ignores_random_misses() {
        let mut p = Prefetcher::new(PrefetchKind::Stride);
        let mut rng = csmt_types::Prng::new(3);
        let mut total = 0;
        for _ in 0..500 {
            total += p.on_miss(rng.below(1 << 24)).len();
        }
        // Random misses rarely repeat a stride in the same region bucket.
        assert!(total < 100, "fired {total} times on noise");
    }

    #[test]
    fn stride_loses_confidence_on_break() {
        let mut p = Prefetcher::new(PrefetchKind::Stride);
        for i in 0..6u64 {
            p.on_miss(i * 2); // stride 2 within one region bucket
        }
        // Break the pattern; the very next miss must not prefetch with the
        // old stride... confidence decays within a couple of misses.
        let out = p.on_miss(1_000_000);
        // (the jump itself changes bucket; just assert no panic and sane
        // output)
        assert!(out.len() <= 2);
    }
}
