//! # csmt-mem
//!
//! Memory-system substrate for the clustered SMT simulator: set-associative
//! caches with LRU replacement, TLBs, the two-level data hierarchy of
//! Table 1 (32 KB L1, 4 MB L2, 60-cycle memory, 2 L1↔L2 buses, MSHR-style
//! miss merging) and the 128-entry shared memory order buffer with
//! store-to-load forwarding.
//!
//! The paper identifies pending L2 misses as the signal the Stall and Flush+
//! policies react to; [`hierarchy::AccessResult::l2_miss`] exposes exactly
//! that bit per access so the pipeline can track per-thread outstanding
//! misses.

pub mod cache;
pub mod hierarchy;
pub mod mob;
pub mod prefetch;
pub mod tlb;
pub mod victim;

pub use cache::SetAssocCache;
pub use hierarchy::{AccessResult, MemHierarchy};
pub use mob::{LoadCheck, Mob, MobIdx};
pub use prefetch::{PrefetchKind, Prefetcher};
pub use tlb::Tlb;
pub use victim::VictimCache;
