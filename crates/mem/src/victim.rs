//! Victim cache (Jouppi, ISCA 1990).
//!
//! A small fully-associative buffer holding the last lines evicted from
//! the L1: conflict misses in the 2-way L1 of Table 1 often hit here and
//! pay a 1-cycle bounce instead of the L2 trip. Extension beyond the
//! paper's memory system (off by default).

use std::collections::VecDeque;

/// Fully-associative victim buffer with FIFO replacement.
#[derive(Debug, Clone)]
pub struct VictimCache {
    lines: VecDeque<u64>,
    capacity: usize,
    pub hits: u64,
    pub probes: u64,
}

impl VictimCache {
    /// `capacity` in lines (0 disables the cache entirely).
    pub fn new(capacity: usize) -> Self {
        VictimCache {
            lines: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            probes: 0,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Probe for `line`; on hit the line is removed (it moves back into
    /// the L1, swapping roles with the L1's victim).
    pub fn take(&mut self, line: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.probes += 1;
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Insert an evicted L1 line.
    pub fn insert(&mut self, line: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
        }
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
        }
        self.lines.push_back(line);
    }

    pub fn len(&self) -> usize {
        self.lines.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_never_hits() {
        let mut v = VictimCache::new(0);
        v.insert(1);
        assert!(!v.take(1));
        assert_eq!(v.len(), 0);
    }

    #[test]
    fn hit_removes_the_line() {
        let mut v = VictimCache::new(4);
        v.insert(10);
        assert!(v.take(10));
        assert!(!v.take(10), "line must move out on hit");
        assert_eq!(v.hits, 1);
        assert_eq!(v.probes, 2);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut v = VictimCache::new(2);
        v.insert(1);
        v.insert(2);
        v.insert(3); // evicts 1
        assert!(!v.take(1));
        assert!(v.take(2));
        assert!(v.take(3));
    }

    #[test]
    fn reinsert_refreshes_position() {
        let mut v = VictimCache::new(2);
        v.insert(1);
        v.insert(2);
        v.insert(1); // moves 1 to the back
        v.insert(3); // evicts 2, not 1
        assert!(v.take(1));
        assert!(!v.take(2));
    }
}
