//! The data-side memory hierarchy of Table 1: L1D → unified L2 → memory,
//! with DTLB translation, MSHR-style merging of misses to the same line and
//! the 2-bus constraint on L1↔L2 refills.

use crate::cache::SetAssocCache;
use crate::prefetch::{PrefetchKind, Prefetcher};
use crate::tlb::Tlb;
use crate::victim::VictimCache;
use csmt_types::MachineConfig;
use std::collections::VecDeque;

/// Outcome of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total added latency beyond the AGU/L1-pipeline cycles the core model
    /// charges (i.e. the memory-hierarchy part: L1 hit latency, or miss
    /// latencies including queueing and TLB walk).
    pub latency: u64,
    /// The access missed in L1.
    pub l1_miss: bool,
    /// The access missed in L2 and went to memory — the signal the Stall /
    /// Flush+ schemes key on.
    pub l2_miss: bool,
    /// The DTLB missed.
    pub tlb_miss: bool,
}

/// An in-flight line fill (MSHR entry).
#[derive(Debug, Clone, Copy)]
struct Mshr {
    line: u64,
    ready_at: u64,
}

/// The data memory hierarchy.
///
/// Stores are modeled write-allocate / write-back at commit time: they
/// update cache state but never stall commit (an ideal store buffer). Loads
/// pay the full latency chain.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    dtlb: Tlb,
    line: u64,
    /// `log2(line)` — line sizes are powers of two (asserted by the cache
    /// constructor), so per-access line math shifts instead of dividing.
    line_shift: u32,
    l1_latency: u64,
    l2_latency: u64,
    mem_latency: u64,
    /// In-flight fills, pruned lazily; bounded by a generous MSHR count.
    mshrs: VecDeque<Mshr>,
    /// Cycles at which an L1↔L2 bus slot was consumed (sliding window).
    bus_busy: VecDeque<u64>,
    bus_count: usize,
    prefetcher: Prefetcher,
    victim: VictimCache,
    // stats
    pub loads: u64,
    pub stores: u64,
    pub l1_misses: u64,
    pub l2_misses: u64,
}

/// Upper bound on simultaneously tracked fills; beyond this, new misses
/// queue behind the oldest (models MSHR exhaustion).
const MAX_MSHRS: usize = 32;

impl MemHierarchy {
    pub fn new(cfg: &MachineConfig) -> Self {
        MemHierarchy {
            l1: SetAssocCache::new(cfg.l1_size, cfg.l1_assoc, cfg.l1_line),
            l2: SetAssocCache::new(cfg.l2_size, cfg.l2_assoc, cfg.l1_line),
            dtlb: Tlb::new(cfg.dtlb_entries, cfg.dtlb_assoc, cfg.tlb_miss_penalty),
            line: cfg.l1_line as u64,
            line_shift: (cfg.l1_line as u64).trailing_zeros(),
            l1_latency: cfg.l1_latency,
            l2_latency: cfg.l2_latency,
            mem_latency: cfg.mem_latency,
            mshrs: VecDeque::new(),
            bus_busy: VecDeque::new(),
            bus_count: cfg.l2_buses,
            prefetcher: Prefetcher::new(match cfg.prefetcher.as_str() {
                "next-line" => PrefetchKind::NextLine,
                "stride" => PrefetchKind::Stride,
                _ => PrefetchKind::None,
            }),
            victim: VictimCache::new(cfg.victim_lines),
            loads: 0,
            stores: 0,
            l1_misses: 0,
            l2_misses: 0,
        }
    }

    fn prune(&mut self, now: u64) {
        while let Some(m) = self.mshrs.front() {
            if m.ready_at <= now {
                self.mshrs.pop_front();
            } else {
                break;
            }
        }
        while let Some(&c) = self.bus_busy.front() {
            if c < now {
                self.bus_busy.pop_front();
            } else {
                break;
            }
        }
    }

    /// Earliest cycle ≥ `from` with a free L1↔L2 bus slot; books the slot.
    fn book_bus(&mut self, from: u64) -> u64 {
        let mut cycle = from;
        loop {
            let used = self.bus_busy.iter().filter(|&&c| c == cycle).count();
            if used < self.bus_count {
                self.bus_busy.push_back(cycle);
                // Keep the window sorted-ish and bounded.
                if self.bus_busy.len() > 4 * self.bus_count {
                    self.bus_busy.pop_front();
                }
                return cycle;
            }
            cycle += 1;
        }
    }

    /// Perform a load at cycle `now`. Returns latency and miss flags.
    pub fn load(&mut self, now: u64, addr: u64) -> AccessResult {
        self.loads += 1;
        self.access(now, addr)
    }

    /// Perform a store (at commit). Updates cache state; the returned
    /// `l2_miss` flag is informational (stores never stall commit).
    pub fn store(&mut self, now: u64, addr: u64) -> AccessResult {
        self.stores += 1;
        self.access(now, addr)
    }

    fn access(&mut self, now: u64, addr: u64) -> AccessResult {
        self.prune(now);
        let tlb_extra = self.dtlb.translate(addr);
        let tlb_miss = tlb_extra > 0;
        let line = addr >> self.line_shift;

        // Merge with an in-flight fill of the same line (MSHR hit): the
        // access completes when the fill returns.
        if let Some(m) = self.mshrs.iter().find(|m| m.line == line) {
            let latency = m.ready_at.saturating_sub(now).max(self.l1_latency) + tlb_extra;
            return AccessResult {
                latency,
                l1_miss: true,
                l2_miss: false,
                tlb_miss,
            };
        }

        let (l1_hit, l1_evicted) = self.l1.access_evict(addr);
        if let Some(ev) = l1_evicted {
            self.victim.insert(ev);
        }
        if l1_hit {
            return AccessResult {
                latency: self.l1_latency + tlb_extra,
                l1_miss: false,
                l2_miss: false,
                tlb_miss,
            };
        }
        self.l1_misses += 1;

        // Victim cache: a conflict-evicted line bounces back in one extra
        // cycle instead of the L2 round trip (the L1 fill already happened
        // in `access_evict`; the swapped-out line entered the buffer above).
        if self.victim.take(line) {
            return AccessResult {
                latency: self.l1_latency + 1 + tlb_extra,
                l1_miss: true,
                l2_miss: false,
                tlb_miss,
            };
        }

        // Prefetch: pull predicted lines into the L2 (not the L1 — classic
        // conservative placement, avoiding L1 pollution). Prefetches use
        // cache fills only; their bus usage is folded into the demand
        // stream's queueing model.
        for pline in self.prefetcher.on_miss(line) {
            self.l2.access(pline * self.line);
        }

        // L1 miss → L2 over a bus.
        let start = self.book_bus(now);
        let queueing = start - now;
        let (latency, l2_miss) = if self.l2.access(addr) {
            (self.l1_latency + self.l2_latency + queueing, false)
        } else {
            self.l2_misses += 1;
            (
                self.l1_latency + self.l2_latency + self.mem_latency + queueing,
                true,
            )
        };
        let total = latency + tlb_extra;
        if self.mshrs.len() >= MAX_MSHRS {
            self.mshrs.pop_front();
        }
        self.mshrs.push_back(Mshr {
            line,
            ready_at: now + total,
        });
        AccessResult {
            latency: total,
            l1_miss: true,
            l2_miss,
            tlb_miss,
        }
    }

    /// Checkpoint-style warm-up: preload `len` bytes starting at `start`
    /// into the L2 (and into the L1 when `also_l1`), stopping once `budget`
    /// lines have been filled. Returns the number of lines filled. Used at
    /// simulator reset so short runs measure steady state rather than an
    /// endless compulsory-miss phase.
    pub fn warm(&mut self, start: u64, len: u64, also_l1: bool, budget: &mut u64) -> u64 {
        let mut filled = 0;
        let mut addr = start & !(self.line - 1);
        let end = start + len;
        while addr < end && *budget > 0 {
            self.l2.access(addr);
            if also_l1 {
                self.l1.access(addr);
            }
            addr += self.line;
            *budget -= 1;
            filled += 1;
        }
        filled
    }

    /// Prefetches issued so far.
    pub fn prefetches(&self) -> u64 {
        self.prefetcher.issued
    }

    /// Victim-cache hits so far.
    pub fn victim_hits(&self) -> u64 {
        self.victim.hits
    }

    /// L1 miss ratio so far.
    pub fn l1_miss_ratio(&self) -> f64 {
        self.l1.miss_ratio()
    }

    /// L2 miss ratio so far (of L2 accesses).
    pub fn l2_miss_ratio(&self) -> f64 {
        self.l2.miss_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::baseline()
    }

    #[test]
    fn hit_latency_is_l1() {
        let mut m = MemHierarchy::new(&cfg());
        m.load(0, 0x1000); // cold: fills TLB + caches
        let r = m.load(10_000, 0x1000);
        assert!(!r.l1_miss);
        assert_eq!(r.latency, cfg().l1_latency);
    }

    #[test]
    fn miss_chain_latencies_match_table1() {
        let mut m = MemHierarchy::new(&cfg());
        let c = cfg();
        // First touch: TLB miss + L1 miss + L2 miss + memory.
        let r = m.load(0, 0x4000_0000);
        assert!(r.l1_miss && r.l2_miss && r.tlb_miss);
        assert_eq!(
            r.latency,
            c.l1_latency + c.l2_latency + c.mem_latency + c.tlb_miss_penalty
        );
        // Evict the line from the 2-way L1 by touching two conflicting
        // lines (same L1 set: stride = 256 sets × 64 B), then re-access:
        // L1 miss, L2 hit.
        let set_stride = 256 * 64;
        m.load(1000, 0x4000_0000 + set_stride);
        m.load(2000, 0x4000_0000 + 2 * set_stride);
        let r2 = m.load(10_000, 0x4000_0000);
        assert!(r2.l1_miss && !r2.l2_miss && !r2.tlb_miss);
        assert_eq!(r2.latency, c.l1_latency + c.l2_latency);
    }

    #[test]
    fn mshr_merges_same_line_misses() {
        let mut m = MemHierarchy::new(&cfg());
        let r1 = m.load(0, 0x4000_0000);
        assert!(r1.l2_miss);
        // Second access to the same line while the fill is in flight: should
        // complete with the fill, not pay a second full miss.
        let r2 = m.load(5, 0x4000_0020);
        assert!(r2.l1_miss);
        assert!(!r2.l2_miss, "merged access must not count as a new L2 miss");
        assert!(r2.latency < r1.latency);
        assert_eq!(r2.latency, r1.latency - 5);
    }

    #[test]
    fn after_fill_returns_line_hits() {
        let mut m = MemHierarchy::new(&cfg());
        let r1 = m.load(0, 0x4000_0000);
        let r2 = m.load(r1.latency + 1, 0x4000_0000);
        assert!(!r2.l1_miss, "line must be resident after the fill");
    }

    #[test]
    fn bus_contention_queues_third_miss() {
        let mut m = MemHierarchy::new(&cfg());
        // Warm the TLB page to isolate bus behaviour.
        m.load(0, 0x4000_0000);
        let base = 100_000u64;
        // Three simultaneous L1 misses to distinct lines in the same page:
        // only 2 buses, so the third starts one cycle later.
        let a = m.load(base, 0x4000_1000);
        let b = m.load(base, 0x4000_2000);
        let c = m.load(base, 0x4000_3000);
        assert_eq!(a.latency, b.latency);
        assert_eq!(c.latency, a.latency + 1, "third fill must queue");
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut m = MemHierarchy::new(&cfg());
        let mut rng = csmt_types::Prng::new(1);
        // 16 KB hot set < 32 KB L1.
        for i in 0..20_000u64 {
            m.load(i * 4, 0x1_0000 + rng.below(16 << 10));
        }
        assert!(m.l1_miss_ratio() < 0.05, "ratio={}", m.l1_miss_ratio());
    }

    #[test]
    fn huge_working_set_misses_l2() {
        let mut m = MemHierarchy::new(&cfg());
        let mut rng = csmt_types::Prng::new(2);
        // 128 MB stream >> 4 MB L2.
        for i in 0..20_000u64 {
            m.load(i * 100, 0x1000_0000 + rng.below(128 << 20));
        }
        assert!(m.l2_miss_ratio() > 0.5, "ratio={}", m.l2_miss_ratio());
        assert!(m.l2_misses > 5_000);
    }

    #[test]
    fn next_line_prefetch_hides_the_second_miss() {
        let mut c = cfg();
        c.prefetcher = "next-line".to_string();
        let mut m = MemHierarchy::new(&c);
        // Touch line 0 of a cold page: misses L2 and prefetches line 1.
        let a = m.load(0, 0x4000_0000);
        assert!(a.l2_miss);
        // Line 1 was prefetched into L2: only an L2 hit now.
        let b = m.load(1000, 0x4000_0040);
        assert!(b.l1_miss && !b.l2_miss, "prefetch must have filled line 1");
        assert!(m.prefetches() >= 1);
    }

    #[test]
    fn victim_cache_catches_conflict_misses() {
        let mut c = cfg();
        c.victim_lines = 8;
        let mut m = MemHierarchy::new(&c);
        // Three lines in the same L1 set (2-way): ping-pong between them
        // causes conflict misses that the victim buffer absorbs.
        let stride = 256 * 64; // L1 set stride
        let addrs = [
            0x4000_0000u64,
            0x4000_0000 + stride,
            0x4000_0000 + 2 * stride,
        ];
        for round in 0..20u64 {
            for (i, &a) in addrs.iter().enumerate() {
                m.load(round * 10 + i as u64, a);
            }
        }
        assert!(m.victim_hits() > 10, "victim hits = {}", m.victim_hits());
        // The bounced accesses must be cheap (no L2 latency): compare a
        // victim hit's latency directly.
        let r = m.load(10_000, addrs[0]);
        assert!(r.latency <= c.l1_latency + 1 + c.tlb_miss_penalty);
    }

    #[test]
    fn baseline_has_no_prefetches() {
        let mut m = MemHierarchy::new(&cfg());
        m.load(0, 0x4000_0000);
        m.load(10, 0x5000_0000);
        assert_eq!(m.prefetches(), 0);
    }

    #[test]
    fn stores_update_state_and_count() {
        let mut m = MemHierarchy::new(&cfg());
        let r = m.store(0, 0x9000);
        assert!(r.l1_miss);
        let r = m.load(100, 0x9000);
        assert!(!r.l1_miss, "store must have allocated the line");
        assert_eq!(m.stores, 1);
        assert_eq!(m.loads, 1);
    }
}
