//! Set-associative cache with true-LRU replacement.
//!
//! Used for the L1 data cache, the unified L2 and (with uop-line geometry)
//! the trace cache. The model tracks tags only — the simulator never needs
//! data values, just hit/miss timing.

/// A set-associative, true-LRU, tag-only cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `tags[set * assoc + way]`; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`; larger = more recently used.
    stamps: Vec<u64>,
    num_sets: usize,
    /// `num_sets - 1` when `num_sets` is a power of two (the common case for
    /// every modelled structure); lets `set_and_tag` mask instead of divide.
    set_mask: Option<u64>,
    assoc: usize,
    line_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl SetAssocCache {
    /// Build a cache of `size` bytes with `assoc` ways and `line` -byte
    /// lines. `size` must be divisible by `line * assoc` and `line` a power
    /// of two (checked by `MachineConfig::validate`, asserted here).
    pub fn new(size: usize, assoc: usize, line: usize) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(assoc >= 1);
        assert_eq!(size % (line * assoc), 0, "size not divisible by line*assoc");
        let num_sets = size / (line * assoc);
        assert!(num_sets >= 1);
        SetAssocCache {
            tags: vec![INVALID; num_sets * assoc],
            stamps: vec![0; num_sets * assoc],
            num_sets,
            set_mask: num_sets.is_power_of_two().then(|| num_sets as u64 - 1),
            assoc,
            line_shift: line.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Build from an abstract entry count (for TLBs and the trace cache,
    /// where "line size" is 1 entry): `entries` total, `assoc` ways.
    pub fn with_entries(entries: usize, assoc: usize) -> Self {
        assert!(
            entries.is_multiple_of(assoc),
            "entries not divisible by assoc"
        );
        let num_sets = entries / assoc;
        SetAssocCache {
            tags: vec![INVALID; entries],
            stamps: vec![0; entries],
            num_sets,
            set_mask: num_sets.is_power_of_two().then(|| num_sets as u64 - 1),
            assoc,
            line_shift: 0,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = match self.set_mask {
            Some(mask) => line & mask,
            None => line % self.num_sets as u64,
        };
        (set as usize, line)
    }

    /// Probe without fill or LRU update. Returns hit.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&tag)
    }

    /// Access the cache: on hit, refresh LRU and return `true`; on miss,
    /// fill the line (evicting the LRU way) and return `false`.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_evict(addr).0
    }

    /// Like [`access`](Self::access), additionally reporting the line
    /// number evicted by a miss fill (None on hits and invalid-way fills) —
    /// the feed for a victim cache.
    pub fn access_evict(&mut self, addr: u64) -> (bool, Option<u64>) {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc;
        self.clock += 1;
        for way in 0..self.assoc {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.clock;
                self.hits += 1;
                return (true, None);
            }
        }
        self.misses += 1;
        // Fill: pick the LRU way (invalid ways have stamp 0, chosen first).
        let mut victim = 0;
        let mut best = u64::MAX;
        let mut evicted = None;
        for way in 0..self.assoc {
            if self.tags[base + way] == INVALID {
                victim = way;
                break;
            }
            if self.stamps[base + way] < best {
                best = self.stamps[base + way];
                victim = way;
            }
        }
        if self.tags[base + victim] != INVALID {
            evicted = Some(self.tags[base + victim]);
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        (false, evicted)
    }

    /// Invalidate the line containing `addr` if present.
    pub fn invalidate(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc;
        for way in 0..self.assoc {
            if self.tags[base + way] == tag {
                self.tags[base + way] = INVALID;
                self.stamps[base + way] = 0;
            }
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all accesses so far (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    pub fn assoc(&self) -> usize {
        self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_computed_correctly() {
        // 32 KB, 2-way, 64 B lines → 256 sets.
        let c = SetAssocCache::new(32 * 1024, 2, 64);
        assert_eq!(c.num_sets(), 256);
        assert_eq!(c.assoc(), 2);
        // 4 MB, 8-way, 64 B lines → 8192 sets.
        let c = SetAssocCache::new(4 * 1024 * 1024, 8, 64);
        assert_eq!(c.num_sets(), 8192);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103F)); // same line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2 sets × 2 ways × 64 B = 256 B. Addresses 0, 128, 256 map to set 0.
        let mut c = SetAssocCache::new(256, 2, 64);
        assert!(!c.access(0)); // set0 way0
        assert!(!c.access(128)); // set0 way1
        assert!(c.access(0)); // refresh 0 → 128 is now LRU
        assert!(!c.access(256)); // evicts 128
        assert!(c.access(0), "0 must survive");
        assert!(!c.access(128), "128 must have been evicted");
    }

    #[test]
    fn associativity_prevents_conflict() {
        // Fully associative set: 4 ways, 1 set.
        let mut c = SetAssocCache::new(256, 4, 64);
        for a in [0u64, 64, 128, 192] {
            assert!(!c.access(a));
        }
        for a in [0u64, 64, 128, 192] {
            assert!(c.access(a), "all 4 lines must fit");
        }
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        c.access(0x40);
        assert!(c.access(0x40));
        c.invalidate(0x40);
        assert!(!c.access(0x40));
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = SetAssocCache::new(256, 2, 64);
        c.access(0);
        c.access(128);
        assert!(c.probe(0));
        assert!(!c.probe(256));
        let (h, m) = (c.hits(), c.misses());
        c.probe(0);
        assert_eq!((c.hits(), c.misses()), (h, m));
    }

    #[test]
    fn with_entries_models_tlbs() {
        // 1024-entry 8-way TLB over page numbers.
        let mut t = SetAssocCache::with_entries(1024, 8);
        assert_eq!(t.num_sets(), 128);
        assert!(!t.access(5));
        assert!(t.access(5));
    }

    #[test]
    fn miss_ratio_sane() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        assert_eq!(c.miss_ratio(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn large_working_set_thrashes_small_cache() {
        let mut c = SetAssocCache::new(1024, 2, 64); // 16 lines
                                                     // Cycle through 64 lines repeatedly → ~100% misses after warmup.
        for round in 0..4 {
            for i in 0..64u64 {
                let hit = c.access(i * 64);
                if round > 0 {
                    assert!(!hit, "line {i} should thrash");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        SetAssocCache::new(1024, 2, 48);
    }

    #[test]
    fn access_evict_reports_the_lru_line() {
        // 1 set × 2 ways.
        let mut c = SetAssocCache::new(128, 2, 64);
        assert_eq!(c.access_evict(0), (false, None)); // invalid way fill
        assert_eq!(c.access_evict(64), (false, None));
        // Fill a third line: evicts line 0 (LRU).
        let (hit, ev) = c.access_evict(128);
        assert!(!hit);
        assert_eq!(ev, Some(0));
        // Hits never evict.
        assert_eq!(c.access_evict(128), (true, None));
    }
}
