//! Translation lookaside buffers.
//!
//! Table 1 gives 1024-entry, 8-way ITLB and DTLB. A miss costs a fixed page
//! walk penalty (not specified by the paper; 20 cycles assumed, see
//! DESIGN.md). Pages are 4 KB.

use crate::cache::SetAssocCache;

const PAGE_SHIFT: u32 = 12;

/// A TLB: a set-associative cache over virtual page numbers.
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: SetAssocCache,
    miss_penalty: u64,
}

impl Tlb {
    pub fn new(entries: usize, assoc: usize, miss_penalty: u64) -> Self {
        Tlb {
            inner: SetAssocCache::with_entries(entries, assoc),
            miss_penalty,
        }
    }

    /// Translate `addr`: returns the extra latency (0 on hit, the page-walk
    /// penalty on a miss). The entry is filled on a miss.
    pub fn translate(&mut self, addr: u64) -> u64 {
        if self.inner.access(addr >> PAGE_SHIFT) {
            0
        } else {
            self.miss_penalty
        }
    }

    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(64, 8, 20);
        assert_eq!(t.translate(0x1000), 20);
        assert_eq!(t.translate(0x1FFF), 0); // same 4 KB page
        assert_eq!(t.translate(0x2000), 20); // next page
        assert_eq!(t.misses(), 2);
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn capacity_miss_after_span() {
        let mut t = Tlb::new(8, 8, 20);
        for p in 0..9u64 {
            t.translate(p << 12);
        }
        // Page 0 was LRU and must have been evicted by page 8.
        assert_eq!(t.translate(0), 20);
    }

    #[test]
    fn zero_penalty_tlb_is_free() {
        let mut t = Tlb::new(16, 2, 0);
        assert_eq!(t.translate(0xABC000), 0);
    }
}
