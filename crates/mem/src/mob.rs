//! The shared memory order buffer (MOB).
//!
//! Table 1: 128 entries shared by both threads and both clusters (§3: "a
//! shared memory order buffer and memory hierarchy is used to process store
//! and load operations"). Loads and stores allocate entries in program
//! order at dispatch; a load may execute once its address is known, every
//! older same-thread store has a resolved address, and any overlapping
//! older store can forward its data.

use csmt_types::{ThreadId, MAX_THREADS};
use std::collections::VecDeque;

/// Handle to a MOB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobIdx(pub u32);

/// Result of a load's readiness check against older stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// An older same-thread store has an unresolved address or overlapping
    /// not-yet-ready data; the load must wait.
    WaitOlderStore,
    /// The youngest overlapping older store can forward its data — the load
    /// completes with forwarding latency and never touches the cache.
    Forward,
    /// No conflict: the load goes to the cache hierarchy.
    Cache,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    thread: ThreadId,
    is_store: bool,
    /// Per-thread program-order sequence number of the owning uop.
    seq: u64,
    addr: Option<(u64, u8)>,
    data_ready: bool,
    valid: bool,
}

const DEAD: Entry = Entry {
    thread: ThreadId(0),
    is_store: false,
    seq: 0,
    addr: None,
    data_ready: false,
    valid: false,
};

/// The memory order buffer.
#[derive(Debug, Clone)]
pub struct Mob {
    entries: Vec<Entry>,
    free: Vec<u32>,
    /// Program-ordered (oldest first) entry indices per thread.
    order: [VecDeque<u32>; MAX_THREADS],
    /// Program-ordered (oldest first) *store* entry indices per thread —
    /// the subset `check_load` scans. Kept separately so a load's check is
    /// O(older stores) instead of O(all in-flight memory ops): `seq` is
    /// increasing along each deque, so the older/younger boundary is a
    /// binary search away.
    stores: [VecDeque<u32>; MAX_THREADS],
}

impl Mob {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2);
        Mob {
            entries: vec![DEAD; capacity],
            free: (0..capacity as u32).rev().collect(),
            order: std::array::from_fn(|_| VecDeque::new()),
            stores: std::array::from_fn(|_| VecDeque::new()),
        }
    }

    /// Entries currently in use.
    pub fn occupancy(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Whether an allocation would succeed.
    pub fn has_free(&self) -> bool {
        !self.free.is_empty()
    }

    /// Allocate an entry for a load/store at dispatch (program order per
    /// thread: `seq` must be increasing per thread).
    pub fn alloc(&mut self, thread: ThreadId, is_store: bool, seq: u64) -> Option<MobIdx> {
        if let Some(back) = self.order[thread.idx()].back() {
            debug_assert!(
                self.entries[*back as usize].seq < seq,
                "MOB allocation out of program order"
            );
        }
        let idx = self.free.pop()?;
        self.entries[idx as usize] = Entry {
            thread,
            is_store,
            seq,
            addr: None,
            data_ready: false,
            valid: true,
        };
        self.order[thread.idx()].push_back(idx);
        if is_store {
            self.stores[thread.idx()].push_back(idx);
        }
        Some(MobIdx(idx))
    }

    /// Record the computed address of an entry (at AGU completion).
    pub fn set_addr(&mut self, idx: MobIdx, addr: u64, size: u8) {
        let e = &mut self.entries[idx.0 as usize];
        debug_assert!(e.valid);
        e.addr = Some((addr, size));
    }

    /// Mark a store's data as available for forwarding.
    pub fn set_store_data_ready(&mut self, idx: MobIdx) {
        let e = &mut self.entries[idx.0 as usize];
        debug_assert!(e.valid && e.is_store);
        e.data_ready = true;
    }

    /// Check whether the load at `idx` (address already set) may proceed.
    pub fn check_load(&self, idx: MobIdx) -> LoadCheck {
        let load = &self.entries[idx.0 as usize];
        debug_assert!(load.valid && !load.is_store);
        let (laddr, lsize) = match load.addr {
            Some(a) => a,
            None => return LoadCheck::WaitOlderStore, // address not ready
        };
        // Scan older same-thread stores from youngest to oldest. The store
        // deque is seq-ordered, so the older/younger boundary is found by
        // binary search and only genuinely older stores are visited.
        let stores = &self.stores[load.thread.idx()];
        let n_older = stores.partition_point(|&i| self.entries[i as usize].seq < load.seq);
        let mut verdict = LoadCheck::Cache;
        for k in (0..n_older).rev() {
            let e = &self.entries[stores[k] as usize];
            debug_assert!(e.valid && e.is_store && e.seq < load.seq);
            match e.addr {
                None => return LoadCheck::WaitOlderStore,
                Some((saddr, ssize)) => {
                    let overlap = laddr < saddr + ssize as u64 && saddr < laddr + lsize as u64;
                    if overlap && verdict == LoadCheck::Cache {
                        // Youngest overlapping store decides.
                        verdict = if e.data_ready {
                            LoadCheck::Forward
                        } else {
                            LoadCheck::WaitOlderStore
                        };
                        if verdict == LoadCheck::WaitOlderStore {
                            return verdict;
                        }
                    }
                }
            }
        }
        verdict
    }

    /// Release an entry (at commit, or when squashed).
    pub fn release(&mut self, idx: MobIdx) {
        let e = &mut self.entries[idx.0 as usize];
        debug_assert!(e.valid, "double release of MOB entry {idx:?}");
        e.valid = false;
        let t = e.thread.idx();
        let is_store = e.is_store;
        if let Some(pos) = self.order[t].iter().position(|&i| i == idx.0) {
            self.order[t].remove(pos);
        }
        if is_store {
            if let Some(pos) = self.stores[t].iter().position(|&i| i == idx.0) {
                self.stores[t].remove(pos);
            }
        }
        self.free.push(idx.0);
    }

    /// Entries held by one thread (used by occupancy statistics).
    pub fn thread_occupancy(&self, thread: ThreadId) -> usize {
        self.order[thread.idx()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn alloc_until_full() {
        let mut m = Mob::new(4);
        for s in 0..4 {
            assert!(m.alloc(T0, false, s).is_some());
        }
        assert!(m.alloc(T1, false, 0).is_none());
        assert_eq!(m.occupancy(), 4);
        assert!(!m.has_free());
    }

    #[test]
    fn release_recycles() {
        let mut m = Mob::new(2);
        let a = m.alloc(T0, true, 0).unwrap();
        let _b = m.alloc(T0, false, 1).unwrap();
        assert!(!m.has_free());
        m.release(a);
        assert!(m.has_free());
        assert!(m.alloc(T1, false, 0).is_some());
    }

    #[test]
    fn load_with_no_older_stores_goes_to_cache() {
        let mut m = Mob::new(8);
        let l = m.alloc(T0, false, 5).unwrap();
        m.set_addr(l, 0x100, 8);
        assert_eq!(m.check_load(l), LoadCheck::Cache);
    }

    #[test]
    fn load_waits_for_unresolved_store_address() {
        let mut m = Mob::new(8);
        let _s = m.alloc(T0, true, 1).unwrap();
        let l = m.alloc(T0, false, 2).unwrap();
        m.set_addr(l, 0x100, 8);
        assert_eq!(m.check_load(l), LoadCheck::WaitOlderStore);
    }

    #[test]
    fn overlapping_ready_store_forwards() {
        let mut m = Mob::new(8);
        let s = m.alloc(T0, true, 1).unwrap();
        let l = m.alloc(T0, false, 2).unwrap();
        m.set_addr(s, 0x100, 8);
        m.set_addr(l, 0x104, 4); // inside the store's 8 bytes
        assert_eq!(m.check_load(l), LoadCheck::WaitOlderStore); // data not ready
        m.set_store_data_ready(s);
        assert_eq!(m.check_load(l), LoadCheck::Forward);
    }

    #[test]
    fn disjoint_store_does_not_forward() {
        let mut m = Mob::new(8);
        let s = m.alloc(T0, true, 1).unwrap();
        let l = m.alloc(T0, false, 2).unwrap();
        m.set_addr(s, 0x100, 4);
        m.set_store_data_ready(s);
        m.set_addr(l, 0x104, 4); // adjacent, not overlapping
        assert_eq!(m.check_load(l), LoadCheck::Cache);
    }

    #[test]
    fn youngest_overlapping_store_wins() {
        let mut m = Mob::new(8);
        let s_old = m.alloc(T0, true, 1).unwrap();
        let s_new = m.alloc(T0, true, 2).unwrap();
        let l = m.alloc(T0, false, 3).unwrap();
        m.set_addr(s_old, 0x100, 8);
        m.set_store_data_ready(s_old);
        m.set_addr(s_new, 0x100, 8);
        m.set_addr(l, 0x100, 8);
        // Youngest overlapping store (s_new) has no data yet → wait, even
        // though an older one could forward.
        assert_eq!(m.check_load(l), LoadCheck::WaitOlderStore);
        m.set_store_data_ready(s_new);
        assert_eq!(m.check_load(l), LoadCheck::Forward);
    }

    #[test]
    fn threads_are_independent() {
        let mut m = Mob::new(8);
        let _s1 = m.alloc(T1, true, 1).unwrap(); // unresolved store, thread 1
        let l = m.alloc(T0, false, 2).unwrap();
        m.set_addr(l, 0x200, 8);
        // Thread 0's load must not wait on thread 1's store.
        assert_eq!(m.check_load(l), LoadCheck::Cache);
    }

    #[test]
    fn younger_store_does_not_block_older_load() {
        let mut m = Mob::new(8);
        let l = m.alloc(T0, false, 1).unwrap();
        let _s = m.alloc(T0, true, 2).unwrap(); // younger than the load
        m.set_addr(l, 0x100, 8);
        assert_eq!(m.check_load(l), LoadCheck::Cache);
    }

    #[test]
    fn thread_occupancy_tracks() {
        let mut m = Mob::new(8);
        let a = m.alloc(T0, false, 1).unwrap();
        m.alloc(T0, true, 2).unwrap();
        m.alloc(T1, false, 1).unwrap();
        assert_eq!(m.thread_occupancy(T0), 2);
        assert_eq!(m.thread_occupancy(T1), 1);
        m.release(a);
        assert_eq!(m.thread_occupancy(T0), 1);
    }
}
