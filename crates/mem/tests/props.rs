//! Property tests: the set-associative cache against a reference LRU
//! model, and MOB ordering invariants under random operation sequences.

use csmt_mem::{LoadCheck, Mob, SetAssocCache};
use csmt_types::ThreadId;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference model: per-set LRU lists.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    assoc: usize,
    line_shift: u32,
}

impl RefCache {
    fn new(num_sets: usize, assoc: usize, line: usize) -> Self {
        RefCache {
            sets: (0..num_sets).map(|_| VecDeque::new()).collect(),
            assoc,
            line_shift: line.trailing_zeros(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets.len() as u64) as usize;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == line) {
            s.remove(pos);
            s.push_front(line);
            true
        } else {
            s.push_front(line);
            if s.len() > self.assoc {
                s.pop_back();
            }
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..1 << 14, 1..400)) {
        // 4 KB, 2-way, 64 B lines → 32 sets: small enough to stress
        // conflicts with 14-bit addresses.
        let mut dut = SetAssocCache::new(4096, 2, 64);
        let mut model = RefCache::new(32, 2, 64);
        for a in addrs {
            prop_assert_eq!(dut.access(a), model.access(a), "divergence at {:#x}", a);
        }
    }

    #[test]
    fn cache_hit_after_access_always(addr: u64) {
        let mut c = SetAssocCache::new(32 * 1024, 2, 64);
        c.access(addr);
        prop_assert!(c.access(addr));
        prop_assert!(c.probe(addr));
    }

    #[test]
    fn mob_never_forwards_from_unready_store(
        ops in prop::collection::vec((any::<bool>(), 0u64..256, any::<bool>()), 1..64),
    ) {
        // Random alloc sequence of loads/stores with overlapping addresses;
        // a load may only Forward when some older overlapping store exists
        // with data ready.
        let mut mob = Mob::new(128);
        let mut live: Vec<(csmt_mem::MobIdx, bool, u64, bool)> = Vec::new(); // (idx, is_store, addr, data_ready)
        for (seq, (is_store, addr8, ready)) in ops.into_iter().enumerate() {
            let addr = addr8 * 8;
            if let Some(idx) = mob.alloc(ThreadId(0), is_store, seq as u64) {
                mob.set_addr(idx, addr, 8);
                if is_store && ready {
                    mob.set_store_data_ready(idx);
                }
                if !is_store {
                    let verdict = mob.check_load(idx);
                    let overlapping_ready = live.iter().any(|&(_, st, a, r)| st && r && a == addr);
                    let overlapping_unready = live.iter().any(|&(_, st, a, r)| st && !r && a == addr);
                    match verdict {
                        LoadCheck::Forward => prop_assert!(overlapping_ready),
                        LoadCheck::Cache => prop_assert!(!overlapping_unready),
                        LoadCheck::WaitOlderStore => {
                            prop_assert!(live.iter().any(|&(_, st, _, r)| st && !r) || overlapping_unready)
                        }
                    }
                }
                live.push((idx, is_store, addr, is_store && ready));
            }
        }
        // Release everything; occupancy must return to zero.
        for (idx, ..) in live {
            mob.release(idx);
        }
        prop_assert_eq!(mob.occupancy(), 0);
    }

    #[test]
    fn mob_occupancy_bounded(n in 1usize..300) {
        let mut mob = Mob::new(64);
        let mut allocated = 0usize;
        for s in 0..n {
            if mob.alloc(ThreadId((s % 2) as u8), s % 3 == 0, (s / 2) as u64 + s as u64).is_some() {
                allocated += 1;
            }
            prop_assert!(mob.occupancy() <= 64);
        }
        prop_assert_eq!(mob.occupancy(), allocated.min(64));
    }
}
