//! Watch individual uops move through the machine: enable the event log,
//! run a workload briefly, and print a pipeline view (D = waiting in the
//! issue queue, X = executing, w = waiting to commit, C = commit).
//!
//! Long D runs on one thread while the other flows = the starvation the
//! assignment schemes manage.
//!
//! Run with: `cargo run --release --example pipeline_view`

use clustered_smt::core::Simulator;
use clustered_smt::prelude::*;

fn main() {
    let workloads = suite();
    let w = workloads
        .iter()
        .find(|w| w.name == "ISPEC-FSPEC/mix.2.1")
        .expect("workload");
    for scheme in [SchemeKind::Icount, SchemeKind::Cssp] {
        println!("==== {scheme} on {} ====", w.name);
        let mut sim = Simulator::new(
            MachineConfig::rf_study(64),
            scheme,
            RegFileSchemeKind::Shared,
            &w.traces,
        );
        sim.enable_event_log(200_000);
        sim.run(8_000, 4_000_000);
        let log = sim.event_log().unwrap();
        println!(
            "mean dispatch→commit latency: {:.1} cycles over {} committed uops",
            log.mean_latency(),
            log.committed().count()
        );
        // Show a small window from the middle of the run.
        let committed: Vec<_> = log.committed().collect();
        let mid = committed[committed.len() / 2].dispatch;
        let view = log.render_window(mid, mid + 12);
        for line in view.lines().take(24) {
            println!("{line}");
        }
        println!();
    }
}
