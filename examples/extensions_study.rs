//! Compare the paper's schemes against the extensions its conclusion names
//! as future work: hill-climbing partitioning (Choi & Yeung), DCRA-style
//! fast/slow classification (Cazorla et al.), perfect-confidence branch
//! gating (El-Moursy & Albonesi), and a round-robin control.
//!
//! Run with: `cargo run --release --example extensions_study`

use clustered_smt::core::schemes::{BranchGate, Dcra, HillClimb, RoundRobin};
use clustered_smt::core::IqScheme;
use clustered_smt::prelude::*;

fn main() {
    let workloads = suite();
    let names = [
        "mixes/mix.2.1",
        "mixes/mix.2.2",
        "ISPEC-FSPEC/mix.2.1",
        "DH/ilp.2.1",
    ];
    println!(
        "{:<22} {}",
        "scheme",
        names
            .iter()
            .map(|n| format!("{:>20}", n.split('/').next_back().unwrap_or(n)))
            .collect::<String>()
    );

    type Mk = Box<dyn Fn(&MachineConfig) -> Box<dyn IqScheme>>;
    let schemes: Vec<(&str, Mk)> = vec![
        (
            "RoundRobin (control)",
            Box::new(|_| Box::new(RoundRobin::new())),
        ),
        (
            "Icount (paper base)",
            Box::new(|_| Box::new(clustered_smt::core::schemes::Icount)),
        ),
        (
            "CSSP (paper best)",
            Box::new(|cfg| Box::new(clustered_smt::core::schemes::Cssp::new(cfg))),
        ),
        (
            "HillClimb (ext)",
            Box::new(|cfg| Box::new(HillClimb::new(cfg))),
        ),
        ("DCRA-style (ext)", Box::new(|cfg| Box::new(Dcra::new(cfg)))),
        ("BranchGate (ext)", Box::new(|_| Box::new(BranchGate))),
    ];

    for (label, mk) in &schemes {
        let mut row = String::new();
        for name in names {
            let w = workloads.iter().find(|w| w.name == name).unwrap();
            let cfg = MachineConfig::iq_study(32);
            let r = SimBuilder::new(cfg.clone())
                .iq_scheme_custom(mk(&cfg))
                .workload(w)
                .warmup(5_000)
                .commit_target(8_000)
                .run();
            row.push_str(&format!("{:>20.3}", r.throughput()));
        }
        println!("{label:<22} {row}");
    }
    println!("\n(throughput in committed uops/cycle; 32-entry IQ study config)");
}
