//! Inspect the synthetic workload suite: characterize one trace of every
//! category and show that each has the features its Table-2 row promises
//! (integer vs FP mix, memory-boundedness, branchiness, code footprint).
//!
//! Also demonstrates the binary trace-file format: the first trace is
//! recorded to disk, re-read, and re-characterized identically.
//!
//! Run with: `cargo run --release --example trace_inspection`

use clustered_smt::trace::profile::{category_base, TraceClass};
use clustered_smt::trace::stats::characterize;
use clustered_smt::trace::{characterize_trace, record_trace, ThreadTrace, TraceReader};

const N: u64 = 50_000;

fn main() {
    println!(
        "{:<16} {:>5} {:>5} {:>5} {:>5} {:>7} {:>7} {:>8} {:>9}",
        "profile", "int", "fp", "mem", "br", "depdist", "entropy", "blocks", "span(KB)"
    );
    for cat in [
        "DH",
        "FSPEC00",
        "ISPEC00",
        "multimedia",
        "office",
        "productivity",
        "server",
        "workstation",
        "miscellanea",
    ] {
        for class in [TraceClass::Ilp, TraceClass::Mem] {
            let p = category_base(cat).variant(class);
            let mut t = ThreadTrace::from_profile(&p, 1);
            let s = characterize_trace(&mut t, N);
            println!(
                "{:<16} {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>7.1} {:>7.3} {:>8} {:>9}",
                p.name,
                s.frac_int,
                s.frac_fp,
                s.frac_load + s.frac_store,
                s.frac_branch,
                s.mean_dep_distance,
                s.branch_entropy,
                s.static_blocks,
                s.addr_span / 1024,
            );
        }
    }

    // Round-trip the first trace through the on-disk format.
    let path = std::env::temp_dir().join("csmt-demo-trace.csmt");
    let p = category_base("DH").variant(TraceClass::Ilp);
    let mut gen = ThreadTrace::from_profile(&p, 1);
    record_trace(&path, &mut gen, N).expect("record trace");
    let mut reader = TraceReader::open(&path).expect("open trace");
    let replayed = characterize(|| reader.next_uop().unwrap().unwrap(), N);
    let mut fresh = ThreadTrace::from_profile(&p, 1);
    let direct = characterize_trace(&mut fresh, N);
    assert_eq!(replayed, direct, "disk replay must match the generator");
    println!(
        "\nrecorded {} uops to {} ({} KB) and replayed them identically",
        N,
        path.display(),
        std::fs::metadata(&path)
            .map(|m| m.len() / 1024)
            .unwrap_or(0)
    );
    let _ = std::fs::remove_file(&path);
}
