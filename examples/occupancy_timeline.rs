//! Watch the issue queues breathe: sample per-thread, per-cluster queue
//! occupancy over time under Icount vs CSSP on a MIX workload, and print
//! a coarse timeline. This is the paper's §5.1 story made visible: under
//! Icount the memory-bound thread's entries bury both clusters during its
//! misses; CSSP caps it at half of each queue.
//!
//! Run with: `cargo run --release --example occupancy_timeline`

use clustered_smt::prelude::*;

fn bar(n: usize, max: usize) -> String {
    let width = 16usize;
    let filled = (n * width + max - 1) / max.max(1);
    format!("{:<width$}", "#".repeat(filled.min(width)))
}

fn main() {
    let workloads = suite();
    let w = workloads
        .iter()
        .find(|w| w.name == "mixes/mix.2.1")
        .expect("workload");
    println!(
        "workload {}: T0 = {}, T1 = {}\n",
        w.name, w.traces[0].profile.name, w.traces[1].profile.name
    );
    for scheme in [SchemeKind::Icount, SchemeKind::Cssp] {
        println!("=== {scheme} ===");
        println!(
            "{:>7}  {:^16}  {:^16}   {:>4} {:>4}",
            "cycle", "cluster0 (T0/T1)", "cluster1 (T0/T1)", "l2m0", "l2m1"
        );
        let (mut sim, _, _) = SimBuilder::new(MachineConfig::iq_study(32))
            .iq_scheme(scheme)
            .workload(w)
            .build();
        let mut max_share = [0usize; 2];
        for i in 0..30_000u64 {
            sim.step();
            let s = sim.snapshot();
            for (t, peak) in max_share.iter_mut().enumerate() {
                *peak = (*peak).max(s.iq[t][0] + s.iq[t][1]);
            }
            if i % 3000 == 0 {
                println!(
                    "{:>7}  {:>2}/{:<2} {}  {:>2}/{:<2} {}   {:>4} {:>4}",
                    s.cycle,
                    s.iq[0][0],
                    s.iq[1][0],
                    bar(s.iq[0][0] + s.iq[1][0], 32),
                    s.iq[0][1],
                    s.iq[1][1],
                    bar(s.iq[0][1] + s.iq[1][1], 32),
                    s.pending_l2[0],
                    s.pending_l2[1],
                );
            }
        }
        println!(
            "peak total IQ entries held: T0 = {}, T1 = {}\n",
            max_share[0], max_share[1]
        );
    }
}
