//! Fairness study: reproduce the paper's §4 metric — the minimum ratio of
//! the two threads' slowdowns relative to running alone ([33]) — for a few
//! schemes on one workload, including the single-thread baseline runs.
//!
//! Run with: `cargo run --release --example fairness_study`

use clustered_smt::prelude::*;

fn main() {
    let workloads = suite();
    let w = workloads
        .iter()
        .find(|w| w.name == "ISPEC-FSPEC/mix.2.2")
        .expect("suite workload");
    let cfg = MachineConfig::rf_study(64);

    // Single-thread baselines: each trace alone on the full machine.
    let alone: Vec<f64> = w
        .traces
        .iter()
        .map(|spec| {
            SimBuilder::new(cfg.clone())
                .single(spec)
                .warmup(5_000)
                .commit_target(10_000)
                .run()
                .ipc(ThreadId(0))
        })
        .collect();
    println!("{}: alone IPC = {:.2} / {:.2}", w.name, alone[0], alone[1]);
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>10}",
        "scheme", "throughput", "sd[0]", "sd[1]", "fairness"
    );
    for (label, iq, rf) in [
        ("Icount", SchemeKind::Icount, RegFileSchemeKind::Shared),
        ("Stall", SchemeKind::Stall, RegFileSchemeKind::Shared),
        ("Flush+", SchemeKind::FlushPlus, RegFileSchemeKind::Shared),
        ("CSSP", SchemeKind::Cssp, RegFileSchemeKind::Shared),
        ("CSSP+CDPRF", SchemeKind::Cssp, RegFileSchemeKind::Cdprf),
    ] {
        let r = SimBuilder::new(cfg.clone())
            .iq_scheme(iq)
            .rf_scheme(rf)
            .workload(w)
            .warmup(5_000)
            .commit_target(10_000)
            .run();
        let smt = [r.ipc(ThreadId(0)), r.ipc(ThreadId(1))];
        let f = fairness(smt, [alone[0], alone[1]]);
        println!(
            "{:<22} {:>10.3} {:>8.2} {:>8.2} {:>10.3}",
            label,
            r.throughput(),
            smt[0] / alone[0],
            smt[1] / alone[1],
            f
        );
    }
    println!("\nfairness = min slowdown ratio; 1.0 means both threads slowed equally");
}
