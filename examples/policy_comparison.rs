//! Compare all seven issue-queue assignment schemes of Table 3 on a
//! memory-bounded + compute-bound (MIX) workload — the scenario where the
//! schemes differ most: a stalled thread can clog the issue queues and
//! starve its partner unless the scheme intervenes.
//!
//! Run with: `cargo run --release --example policy_comparison`

use clustered_smt::prelude::*;

fn main() {
    let workloads = suite();
    let w = workloads
        .iter()
        .find(|w| w.name == "ISPEC-FSPEC/mix.2.2")
        .expect("suite workload");
    println!(
        "Workload {}: thread0 = {}, thread1 = {}",
        w.name, w.traces[0].profile.name, w.traces[1].profile.name
    );
    println!(
        "{:<8} {:>10} {:>8} {:>8} {:>12} {:>12} {:>9}",
        "scheme", "throughput", "ipc[0]", "ipc[1]", "copies/uop", "iqstall/uop", "flushes"
    );
    let mut base = None;
    for kind in SchemeKind::all() {
        let r = SimBuilder::new(MachineConfig::baseline())
            .iq_scheme(kind)
            .workload(w)
            .warmup(5_000)
            .commit_target(10_000)
            .run();
        let tp = r.throughput();
        let base_tp = *base.get_or_insert(tp);
        println!(
            "{:<8} {:>6.3} ({:+.0}%) {:>8.2} {:>8.2} {:>12.3} {:>12.3} {:>9}",
            kind.name(),
            tp,
            (tp / base_tp - 1.0) * 100.0,
            r.ipc(ThreadId(0)),
            r.ipc(ThreadId(1)),
            r.copies_per_retired(),
            r.iq_stalls_per_retired(),
            r.stats.flushes,
        );
    }
    println!("\n(speedups relative to Icount, the first row)");
}
