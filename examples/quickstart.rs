//! Quickstart: simulate one SMT workload under the baseline policy
//! (Icount) and the paper's proposal (CSSP + CDPRF), and print the
//! Table-1 machine configuration being modeled.
//!
//! Run with: `cargo run --release --example quickstart`

use clustered_smt::prelude::*;

fn main() {
    let cfg = MachineConfig::baseline();
    println!("Machine (Table 1):");
    println!(
        "  fetch/commit width : {} / {}",
        cfg.fetch_width, cfg.commit_width
    );
    println!(
        "  issue queues       : {} entries x 2 clusters",
        cfg.iq_per_cluster
    );
    println!(
        "  registers/cluster  : {} int + {} fp/simd",
        cfg.int_regs_per_cluster, cfg.fp_regs_per_cluster
    );
    println!("  ROB                : {} per thread", cfg.rob_per_thread);
    println!(
        "  memory             : L1 {}KB/{}cy, L2 {}MB/{}cy, mem {}cy",
        cfg.l1_size / 1024,
        cfg.l1_latency,
        cfg.l2_size / (1024 * 1024),
        cfg.l2_latency,
        cfg.mem_latency
    );
    println!();

    let workloads = suite();
    let w = workloads
        .iter()
        .find(|w| w.name == "ISPEC-FSPEC/mix.2.2")
        .expect("suite workload");
    println!(
        "Workload: {} ({} + {})",
        w.name, w.traces[0].profile.name, w.traces[1].profile.name
    );

    for (label, iq, rf) in [
        (
            "Icount (baseline)",
            SchemeKind::Icount,
            RegFileSchemeKind::Shared,
        ),
        (
            "CSSP + CDPRF (paper's proposal)",
            SchemeKind::Cssp,
            RegFileSchemeKind::Cdprf,
        ),
    ] {
        let r = SimBuilder::new(MachineConfig::rf_study(64))
            .iq_scheme(iq)
            .rf_scheme(rf)
            .workload(w)
            .warmup(5_000)
            .commit_target(10_000)
            .run();
        println!(
            "  {label:32} throughput {:.3} uops/cycle  (per-thread IPC {:.2} / {:.2}, {:.3} copies/uop)",
            r.throughput(),
            r.ipc(ThreadId(0)),
            r.ipc(ThreadId(1)),
            r.copies_per_retired(),
        );
    }
}
