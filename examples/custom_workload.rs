//! Build a custom workload from scratch: define your own trace profiles
//! (instruction mix, locality, branchiness, register pressure), pair them,
//! and study how the paper's schemes treat an adversarial combination —
//! a register-hungry integer thread against a pointer-chasing thread.
//!
//! Run with: `cargo run --release --example custom_workload`

use clustered_smt::prelude::*;
use clustered_smt::trace::suite::TraceSpec;

fn main() {
    // A register-hungry, wide integer thread.
    let mut hungry = TraceProfile::balanced("reg-hungry");
    hungry.mix = [0.5, 0.03, 0.0, 0.0, 0.22, 0.1, 0.13, 0.02];
    hungry.int_reg_span = 28; // nearly every architectural register live
    hungry.dep_tightness = 0.12;
    hungry.dep_min = 4;
    hungry.footprint = 1 << 20;
    hungry.hot_frac = 0.9;
    hungry.validate().expect("valid profile");

    // A pointer chaser: every load hangs off the previous one.
    let mut chaser = TraceProfile::balanced("pointer-chaser");
    chaser.mix = [0.3, 0.0, 0.0, 0.0, 0.4, 0.1, 0.18, 0.02];
    chaser.dep_tightness = 0.85;
    chaser.footprint = 96 << 20;
    chaser.hot_frac = 0.4;
    chaser.validate().expect("valid profile");

    let traces = [
        TraceSpec {
            profile: hungry,
            seed: 1,
        },
        TraceSpec {
            profile: chaser,
            seed: 2,
        },
    ];

    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>12}",
        "scheme", "throughput", "ipc[0]", "ipc[1]", "rf denials"
    );
    for (label, iq, rf) in [
        ("Icount", SchemeKind::Icount, RegFileSchemeKind::Shared),
        ("CSSP", SchemeKind::Cssp, RegFileSchemeKind::Shared),
        ("CSSP+CISPRF", SchemeKind::Cssp, RegFileSchemeKind::Cisprf),
        ("CSSP+CDPRF", SchemeKind::Cssp, RegFileSchemeKind::Cdprf),
    ] {
        let mut builder = SimBuilder::new(MachineConfig::rf_study(64))
            .iq_scheme(iq)
            .rf_scheme(rf)
            .warmup(5_000)
            .commit_target(10_000);
        for spec in &traces {
            builder = builder.push_trace(spec.clone());
        }
        let r = builder.run();
        println!(
            "{:<22} {:>10.3} {:>8.2} {:>8.2} {:>12?}",
            label,
            r.throughput(),
            r.ipc(ThreadId(0)),
            r.ipc(ThreadId(1)),
            r.stats.rf_blocked,
        );
    }
}
