//! # clustered-smt
//!
//! A cycle-level simulator of a **clustered SMT processor** and the
//! resource-assignment schemes studied in F. Latorre, J. González &
//! A. González, *"Efficient Resources Assignment Schemes for Clustered
//! Multithreaded Processors"*, IPDPS 2008 — including the paper's proposed
//! dynamic register-file partitioning scheme, **CDPRF**.
//!
//! This crate is a facade re-exporting the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`types`] | ids, micro-ops, Table-1 machine configuration |
//! | [`trace`] | synthetic trace generator + Table-2 workload suite |
//! | [`mem`] | caches, TLBs, memory order buffer |
//! | [`frontend`] | trace cache, branch predictors, rename tables, ROB |
//! | [`backend`] | issue queues, register files, ports, link fabric |
//! | [`core`] | the pipeline, schemes (Icount…CDPRF), steering, metrics |
//! | [`store`] | persistent content-addressed result store + sweep journal |
//! | [`experiments`] | per-figure reproduction harness |
//!
//! ## Quick start
//!
//! ```
//! use clustered_smt::prelude::*;
//!
//! // Simulate the first Table-2 workload under the paper's proposal
//! // (CSSP issue queues + CDPRF register files).
//! let workload = &suite()[0];
//! let result = SimBuilder::new(MachineConfig::baseline())
//!     .iq_scheme(SchemeKind::Cssp)
//!     .rf_scheme(RegFileSchemeKind::Cdprf)
//!     .workload(workload)
//!     .warmup(2_000)
//!     .commit_target(5_000)
//!     .run();
//! println!("throughput: {:.2} uops/cycle", result.throughput());
//! assert!(result.throughput() > 0.0);
//! ```

pub use csmt_backend as backend;
pub use csmt_core as core;
pub use csmt_experiments as experiments;
pub use csmt_frontend as frontend;
pub use csmt_mem as mem;
pub use csmt_store as store;
pub use csmt_trace as trace;
pub use csmt_types as types;

/// The names most programs need.
pub mod prelude {
    pub use csmt_core::{fairness, SimBuilder, SimResult, Simulator};
    pub use csmt_trace::{suite, Category, TraceProfile, Workload, WorkloadKind};
    pub use csmt_types::{
        ClusterId, MachineConfig, RegClass, RegFileSchemeKind, SchemeKind, ThreadId,
    };
}
