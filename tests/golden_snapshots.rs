//! Golden snapshot tests: exact-integer fixtures locking the simulator's
//! observable behaviour across refactors.
//!
//! Two fixtures live in `tests/golden/`:
//!
//! * `sim_stats.json` — full [`SimStats`] for six fixed runs spanning the
//!   IQ and RF schemes. Any change to event ordering, resource accounting
//!   or the cycle loop shows up here as a byte-level diff.
//! * `fig_headline.json` — the fig2 (throughput speedup vs Icount@32) and
//!   fig3 (copies per retired uop) headline values over the bench slice
//!   workloads, i.e. a reduced-scale AVG row of the paper's figures. This
//!   is what keeps the EXPERIMENTS.md claims (CSSP ×1.126, CDPRF ×1.125)
//!   from silently drifting: a simulator change that alters the figures
//!   at any scale alters these bytes.
//!
//! Regenerate intentionally with `CSMT_BLESS=1 cargo test --test
//! golden_snapshots` and review the diff like any other code change.

use clustered_smt::experiments::bench::{SLICE_COMBOS, SLICE_WORKLOADS};
use clustered_smt::prelude::*;
use serde::{Deserialize, Serialize};

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the committed fixture, or rewrite it when
/// blessing. The assert is on whole strings so a mismatch shows both
/// sides in full.
fn assert_matches_fixture(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("CSMT_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {} ({e}); run with CSMT_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "simulator output drifted from fixture {name}; if intentional, \
         re-bless with CSMT_BLESS=1 and review the diff"
    );
}

fn workload(name: &str) -> Workload {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("{name} not in suite"))
}

#[derive(Serialize, Deserialize)]
struct StatsRow {
    workload: String,
    iq: String,
    rf: String,
    config: String,
    stats: clustered_smt::core::metrics::SimStats,
}

/// The six fixed runs of the `sim_stats.json` fixture.
fn stats_fixture_runs() -> Vec<(String, SchemeKind, RegFileSchemeKind, MachineConfig, String)> {
    use RegFileSchemeKind as RF;
    use SchemeKind as IQ;
    vec![
        (
            "DH/ilp.2.1",
            IQ::Icount,
            RF::Shared,
            MachineConfig::iq_study(32),
            "iq32",
        ),
        (
            "multimedia/mix.2.1",
            IQ::FlushPlus,
            RF::Shared,
            MachineConfig::iq_study(32),
            "iq32",
        ),
        (
            "ISPEC-FSPEC/mix.2.1",
            IQ::Cssp,
            RF::Shared,
            MachineConfig::iq_study(64),
            "iq64",
        ),
        (
            "mixes/mix.2.3",
            IQ::Cssp,
            RF::Cdprf,
            MachineConfig::rf_study(64),
            "rf64",
        ),
        (
            "mixes/mix.2.1",
            IQ::Cisp,
            RF::Shared,
            MachineConfig::iq_study(32),
            "iq32",
        ),
        (
            "ISPEC-FSPEC/ilp.2.1",
            IQ::Cspsp,
            RF::Cssprf,
            MachineConfig::rf_study(128),
            "rf128",
        ),
    ]
    .into_iter()
    .map(|(w, iq, rf, cfg, label)| (w.to_string(), iq, rf, cfg, label.to_string()))
    .collect()
}

#[test]
fn sim_stats_match_golden_fixture() {
    let rows: Vec<StatsRow> = stats_fixture_runs()
        .into_iter()
        .map(|(name, iq, rf, cfg, label)| {
            let w = workload(&name);
            let mut sim = Simulator::new(cfg, iq, rf, &w.traces);
            // Differential oracle: architecturally replay each thread's
            // program and cross-check the committed stream. Fail-fast, so
            // any divergence panics the test.
            sim.enable_oracle();
            let r = sim.run_with_warmup(1_000, 3_000, 10_000_000);
            StatsRow {
                workload: name,
                iq: iq.to_string(),
                rf: format!("{rf:?}"),
                config: label,
                stats: r.stats,
            }
        })
        .collect();
    let actual = serde_json::to_string_pretty(&rows).unwrap() + "\n";
    assert_matches_fixture("sim_stats.json", &actual);
}

/// Scaled-shape fixture runs: 4 threads × 2 clusters and 4 threads ×
/// 4 clusters, over the N-thread bundles. Kept in a separate fixture
/// (`scaled_stats.json`) so the paper-shape fixtures above stay
/// byte-identical to their pre-generalization bytes.
fn scaled_fixture_runs() -> Vec<(
    String,
    usize,
    SchemeKind,
    RegFileSchemeKind,
    MachineConfig,
    String,
)> {
    use RegFileSchemeKind as RF;
    use SchemeKind as IQ;
    let shaped_iq = |threads: usize, clusters: usize| {
        let mut c = MachineConfig::iq_study(32);
        c.num_threads = threads;
        c.num_clusters = clusters;
        c
    };
    let shaped_rf = |threads: usize, clusters: usize| {
        let mut c = MachineConfig::rf_study(128);
        c.num_threads = threads;
        c.num_clusters = clusters;
        c
    };
    vec![
        (
            "ISPEC00/ilp.4",
            2,
            IQ::Cssp,
            RF::Shared,
            shaped_iq(4, 2),
            "iq32@4x2",
        ),
        (
            "FSPEC00/mem.4",
            2,
            IQ::FlushPlus,
            RF::Shared,
            shaped_iq(4, 2),
            "iq32@4x2",
        ),
        (
            "ISPEC00/mix.4",
            4,
            IQ::Cisp,
            RF::Shared,
            shaped_iq(4, 4),
            "iq32@4x4",
        ),
        (
            "FSPEC00/mix.4",
            4,
            IQ::Cssp,
            RF::Cdprf,
            shaped_rf(4, 4),
            "rf128@4x4",
        ),
    ]
    .into_iter()
    .map(|(b, m, iq, rf, cfg, label)| (b.to_string(), m, iq, rf, cfg, label.to_string()))
    .collect()
}

#[test]
fn scaled_sim_stats_match_golden_fixture() {
    let bundles = csmt_trace::bundles(4);
    let rows: Vec<StatsRow> = scaled_fixture_runs()
        .into_iter()
        .map(|(name, clusters, iq, rf, cfg, label)| {
            let b = bundles
                .iter()
                .find(|b| b.name == name)
                .unwrap_or_else(|| panic!("{name} not in bundles(4)"));
            assert_eq!(cfg.num_clusters, clusters);
            let mut sim = Simulator::new(cfg, iq, rf, &b.traces);
            sim.enable_oracle();
            let r = sim.run_with_warmup(500, 1_500, 10_000_000);
            StatsRow {
                workload: name,
                iq: iq.to_string(),
                rf: format!("{rf:?}"),
                config: label,
                stats: r.stats,
            }
        })
        .collect();
    let actual = serde_json::to_string_pretty(&rows).unwrap() + "\n";
    assert_matches_fixture("scaled_stats.json", &actual);
}

/// Counter-adaptive fixture runs: the CAIQ/CARF schemes on the paper
/// 2×2 shape plus one scaled 4×2 shape, with epochs short enough that
/// many re-apportioning steps fire inside the run. A separate fixture
/// (`adaptive_stats.json`) so the pre-existing fixtures stay
/// byte-identical to their pre-adaptive bytes. All configs keep the
/// adaptive shares strictly above the rename floor (96 regs at 2×2 →
/// share 96 > floor 64; 160 regs at 4×2 → share 80 > floor 64) so the
/// feedback loop genuinely moves entries during the pinned runs.
fn adaptive_fixture_runs() -> Vec<(String, SchemeKind, RegFileSchemeKind, MachineConfig, String)> {
    use RegFileSchemeKind as RF;
    use SchemeKind as IQ;
    let adaptive = |mut c: MachineConfig| {
        c.adaptive_epoch = 256;
        c
    };
    vec![
        (
            "mixes/mix.2.1",
            IQ::Caiq,
            RF::Carf,
            adaptive(MachineConfig::rf_study(96)),
            "rf96+ep256",
        ),
        (
            "ISPEC-FSPEC/mix.2.1",
            IQ::Caiq,
            RF::Shared,
            adaptive(MachineConfig::iq_study(32)),
            "iq32+ep256",
        ),
        (
            "DH/mem.2.1",
            IQ::Cssp,
            RF::Carf,
            adaptive(MachineConfig::rf_study(96)),
            "rf96+ep256",
        ),
    ]
    .into_iter()
    .map(|(w, iq, rf, cfg, label)| (w.to_string(), iq, rf, cfg, label.to_string()))
    .collect()
}

#[test]
fn adaptive_sim_stats_match_golden_fixture() {
    let mut rows: Vec<StatsRow> = adaptive_fixture_runs()
        .into_iter()
        .map(|(name, iq, rf, cfg, label)| {
            let w = workload(&name);
            let mut sim = Simulator::new(cfg, iq, rf, &w.traces);
            sim.enable_oracle();
            let r = sim.run_with_warmup(1_000, 3_000, 10_000_000);
            StatsRow {
                workload: name,
                iq: iq.to_string(),
                rf: format!("{rf:?}"),
                config: label,
                stats: r.stats,
            }
        })
        .collect();
    // One scaled-shape run: 4 threads × 2 clusters, both schemes adapting.
    {
        let bundles = csmt_trace::bundles(4);
        let name = "ISPEC00/mix.4";
        let b = bundles
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("{name} not in bundles(4)"));
        let mut cfg = MachineConfig::rf_study(160);
        cfg.num_threads = 4;
        cfg.num_clusters = 2;
        cfg.adaptive_epoch = 256;
        let mut sim = Simulator::new(cfg, SchemeKind::Caiq, RegFileSchemeKind::Carf, &b.traces);
        sim.enable_oracle();
        let r = sim.run_with_warmup(500, 1_500, 10_000_000);
        rows.push(StatsRow {
            workload: name.to_string(),
            iq: SchemeKind::Caiq.to_string(),
            rf: format!("{:?}", RegFileSchemeKind::Carf),
            config: "rf160+ep256@4x2".to_string(),
            stats: r.stats,
        });
    }
    let actual = serde_json::to_string_pretty(&rows).unwrap() + "\n";
    assert_matches_fixture("adaptive_stats.json", &actual);
}

#[derive(Serialize, Deserialize)]
struct HeadlineRow {
    combo: String,
    /// Mean throughput speedup vs Icount@32 over the slice workloads
    /// (the fig2 AVG-row value at reduced scale).
    fig2_speedup: f64,
    /// Mean inter-cluster copies per retired uop (fig3's metric).
    fig3_copies: f64,
}

#[test]
fn fig2_fig3_headline_rows_match_golden_fixture() {
    let workloads: Vec<Workload> = SLICE_WORKLOADS.iter().map(|n| workload(n)).collect();
    // All 14 fig2 combos, not just the timed slice combos, so every IQ
    // scheme's behaviour is pinned.
    let mut combos: Vec<(SchemeKind, usize)> = Vec::new();
    for s in SchemeKind::all() {
        for iq in [32usize, 64] {
            combos.push((s, iq));
        }
    }
    assert!(SLICE_COMBOS.iter().all(|c| combos.contains(c)));

    let run = |w: &Workload, s: SchemeKind, iq: usize| {
        let mut sim = Simulator::new(
            MachineConfig::iq_study(iq),
            s,
            RegFileSchemeKind::Shared,
            &w.traces,
        );
        sim.enable_oracle();
        sim.run_with_warmup(500, 2_000, 10_000_000)
    };
    let bases: Vec<SimResult> = workloads
        .iter()
        .map(|w| run(w, SchemeKind::Icount, 32))
        .collect();
    let rows: Vec<HeadlineRow> = combos
        .iter()
        .map(|&(s, iq)| {
            let mut speedup = 0.0;
            let mut copies = 0.0;
            for (w, base) in workloads.iter().zip(&bases) {
                let r = run(w, s, iq);
                speedup += r.throughput() / base.throughput().max(1e-9);
                copies += r.copies_per_retired();
            }
            HeadlineRow {
                combo: format!("{s}/{iq}"),
                fig2_speedup: speedup / workloads.len() as f64,
                fig3_copies: copies / workloads.len() as f64,
            }
        })
        .collect();
    let actual = serde_json::to_string_pretty(&rows).unwrap() + "\n";
    assert_matches_fixture("fig_headline.json", &actual);
}
