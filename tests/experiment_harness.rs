//! Integration tests for the experiment harness: memoized sweeps, table
//! construction and figure slices at tiny scale.

use clustered_smt::experiments::figures::{run_named, tables, ALL_ARTIFACTS};
use clustered_smt::experiments::runner::{CfgKind, ExpOptions, Sweeps};
use clustered_smt::prelude::*;

fn tiny() -> Sweeps {
    Sweeps::new(ExpOptions {
        commit_target: 400,
        warmup: 100,
        max_cycles: 2_000_000,
        jobs: 0,
        verbose: false,
        validate: false,
        batch: false,
        sample: None,
    })
}

#[test]
fn table2_matches_paper_counts() {
    let t = tables::table2();
    assert_eq!(t.value("TOTAL", "total"), Some(120.0));
    assert_eq!(t.value("ISPEC-FSPEC", "total"), Some(16.0));
    assert_eq!(t.value("mixes", "MIX"), Some(32.0));
    assert_eq!(t.value("DH", "ILP"), Some(3.0));
}

#[test]
fn artifact_names_resolve() {
    let sweeps = tiny();
    // table2 is cheap and exercises run_named dispatch.
    assert!(run_named("table2", &sweeps).is_some());
    assert!(run_named("no-such-figure", &sweeps).is_none());
    assert_eq!(ALL_ARTIFACTS.len(), 11);
    assert!(ALL_ARTIFACTS.contains(&"figN"));
    assert!(ALL_ARTIFACTS.contains(&"figPair"));
}

#[test]
fn fign_runs_scaled_shapes_at_tiny_scale() {
    use clustered_smt::experiments::figures::fign;
    let sweeps = Sweeps::new(ExpOptions {
        commit_target: 200,
        warmup: 50,
        max_cycles: 2_000_000,
        jobs: 0,
        verbose: false,
        validate: false,
        batch: false,
        sample: None,
    });
    let t = fign::run(&sweeps);
    // Two shapes × six bundles, plus the Average row.
    assert_eq!(t.rows.len(), 2 * 6 + 1);
    for (label, vals) in &t.rows {
        for v in vals {
            assert!(v.is_finite() && *v >= 0.0, "{label}: bad value {v}");
        }
    }
}

#[test]
fn sweeps_share_runs_between_figures() {
    let sweeps = tiny();
    let workloads: Vec<Workload> = suite().into_iter().take(2).collect();
    let combos = [(
        SchemeKind::Icount,
        RegFileSchemeKind::Shared,
        CfgKind::IqStudy { iq: 32 },
    )];
    sweeps.smt_batch(&workloads, &combos);
    let before = sweeps.len();
    sweeps.smt_batch(&workloads, &combos);
    assert_eq!(sweeps.len(), before, "second batch must be memoized");
}

#[test]
fn normalized_speedups_are_positive_and_finite() {
    let sweeps = tiny();
    let workloads: Vec<Workload> = suite().into_iter().take(1).collect();
    let grid = [
        (
            SchemeKind::Icount,
            RegFileSchemeKind::Shared,
            CfgKind::IqStudy { iq: 32 },
        ),
        (
            SchemeKind::Cssp,
            RegFileSchemeKind::Shared,
            CfgKind::IqStudy { iq: 32 },
        ),
    ];
    sweeps.smt_batch(&workloads, &grid);
    let w = &workloads[0];
    let base = sweeps.get(&Sweeps::smt_key(w, grid[0].0, grid[0].1, grid[0].2));
    let r = sweeps.get(&Sweeps::smt_key(w, grid[1].0, grid[1].1, grid[1].2));
    let speedup = r.throughput() / base.throughput();
    assert!(speedup.is_finite() && speedup > 0.1 && speedup < 10.0);
}
