//! Metamorphic mirror test: with symmetric scheduling armed, swapping the
//! two threads' programs must yield an *exactly* mirrored execution.
//!
//! The simulator's scheduling tie-breaks (fetch scan order, rename
//! alternation phase, commit priority, steering ties, issue cluster scan,
//! cache warm-up order) are all phased by a single orientation bit derived
//! from the thread programs' identities (see `MachineConfig::
//! symmetric_sched`). Swapping the programs flips the bit, so run
//! `[A, B]` and run `[B, A]` are the same execution under the relabeling
//! `thread 0 ↔ thread 1`, `cluster 0 ↔ cluster 1` — every per-thread
//! statistic must swap exactly, every per-cluster statistic must swap
//! exactly, and every shared scalar must be identical.
//!
//! This is a *metamorphic* test: no golden values, just a relation between
//! two runs that any correct implementation must satisfy. It catches
//! hidden asymmetries (a structure that favors thread 0, a scan that
//! always starts at cluster 0) that absolute tests can't see.

use clustered_smt::prelude::*;
use csmt_core::MachineSnapshot;
use csmt_trace::suite::TraceSpec;

fn mirror_cfg(base: MachineConfig) -> MachineConfig {
    let mut cfg = base;
    cfg.symmetric_sched = true;
    cfg
}

struct MirrorRun {
    result: SimResult,
    snapshot: MachineSnapshot,
}

fn run(
    cfg: &MachineConfig,
    iq: SchemeKind,
    rf: RegFileSchemeKind,
    traces: &[TraceSpec],
) -> MirrorRun {
    let mut sim = Simulator::new(cfg.clone(), iq, rf, traces);
    let result = sim.run_with_warmup(500, 2_000, 2_000_000);
    MirrorRun {
        result,
        snapshot: sim.snapshot(),
    }
}

/// Assert the first two entries of `f` are `r`'s swapped, and any slots
/// past the 2-thread/2-cluster shape are identical (all zero in practice).
fn assert_swapped<T: Copy + PartialEq + std::fmt::Debug>(f: &[T], r: &[T], label: &str) {
    assert_eq!(f.len(), r.len(), "{label}: length");
    assert_eq!(f[0], r[1], "{label}[0]");
    assert_eq!(f[1], r[0], "{label}[1]");
    for i in 2..f.len() {
        assert_eq!(f[i], r[i], "{label}[{i}]");
    }
}

/// Assert that `fwd` (run on `[A, B]`) and `rev` (run on `[B, A]`) are
/// exact mirrors of each other.
fn assert_mirrored(label: &str, fwd: &MirrorRun, rev: &MirrorRun) {
    let f = &fwd.result.stats;
    let r = &rev.result.stats;
    // Shared scalars: identical.
    assert_eq!(f.cycles, r.cycles, "{label}: cycles");
    assert_eq!(f.copies_retired, r.copies_retired, "{label}: copies");
    assert_eq!(f.iq_stall_events, r.iq_stall_events, "{label}: iq stalls");
    assert_eq!(
        f.rename_blocked, r.rename_blocked,
        "{label}: rename blocked"
    );
    assert_eq!(
        f.cycles_with_issue, r.cycles_with_issue,
        "{label}: issue cycles"
    );
    assert_eq!(f.branches, r.branches, "{label}: branches");
    assert_eq!(f.mispredicts, r.mispredicts, "{label}: mispredicts");
    assert_eq!(f.flushes, r.flushes, "{label}: flushes");
    assert_eq!(f.squashed, r.squashed, "{label}: squashed");
    assert_eq!(f.tc_miss_ratio, r.tc_miss_ratio, "{label}: tc miss ratio");
    assert_eq!(f.l1_miss_ratio, r.l1_miss_ratio, "{label}: l1 miss ratio");
    assert_eq!(f.l2_miss_ratio, r.l2_miss_ratio, "{label}: l2 miss ratio");
    // The imbalance counters are already symmetric in the cluster
    // relabeling ("some cluster stalled while the *other* had ports").
    assert_eq!(f.imbalance, r.imbalance, "{label}: imbalance");
    // Per-thread: swapped.
    assert_swapped(&f.committed, &r.committed, &format!("{label}: committed"));
    assert_swapped(
        &f.finish_cycle,
        &r.finish_cycle,
        &format!("{label}: finish cycle"),
    );
    assert_swapped(
        &f.rf_blocked,
        &r.rf_blocked,
        &format!("{label}: rf_blocked"),
    );
    assert_swapped(&f.l2_misses, &r.l2_misses, &format!("{label}: l2 misses"));
    // Per-cluster: swapped.
    assert_swapped(
        &f.dispatched,
        &r.dispatched,
        &format!("{label}: dispatched"),
    );
    assert_swapped(&f.issued, &r.issued, &format!("{label}: issued"));
    assert_swapped(
        &f.issued_by_port,
        &r.issued_by_port,
        &format!("{label}: issued by port"),
    );
    // Final occupancy snapshot: thread AND cluster axes both mirror.
    let fs = &fwd.snapshot;
    let rs = &rev.snapshot;
    assert_eq!(fs.cycle, rs.cycle, "{label}: snapshot cycle");
    assert_eq!(fs.mob, rs.mob, "{label}: snapshot mob");
    assert_swapped(&fs.rob, &rs.rob, &format!("{label}: snapshot rob"));
    assert_swapped(&fs.fetchq, &rs.fetchq, &format!("{label}: snapshot fetchq"));
    assert_swapped(
        &fs.committed,
        &rs.committed,
        &format!("{label}: snapshot committed"),
    );
    assert_swapped(
        &fs.pending_l2,
        &rs.pending_l2,
        &format!("{label}: snapshot l2"),
    );
    for t in 0..2 {
        for c in 0..2 {
            assert_eq!(
                fs.iq[t][c],
                rs.iq[1 - t][1 - c],
                "{label}: snapshot iq[{t}][{c}]"
            );
            assert_eq!(
                fs.iq_steered[t][c],
                rs.iq_steered[1 - t][1 - c],
                "{label}: snapshot iq_steered[{t}][{c}]"
            );
            for k in 0..csmt_types::RegClass::COUNT {
                assert_eq!(
                    fs.regs[t][k][c],
                    rs.regs[1 - t][k][1 - c],
                    "{label}: snapshot regs[{t}][{k}][{c}]"
                );
            }
        }
    }
}

fn mirror_case(cfg: &MachineConfig, iq: SchemeKind, rf: RegFileSchemeKind, w: &Workload) {
    let fwd_traces = w.traces.clone();
    let rev_traces = [w.traces[1].clone(), w.traces[0].clone()];
    let fwd = run(cfg, iq, rf, &fwd_traces);
    let rev = run(cfg, iq, rf, &rev_traces);
    assert_mirrored(&format!("{}/{iq}/{rf:?}", w.name), &fwd, &rev);
}

fn workload(name: &str) -> Workload {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("{name} not in suite"))
}

/// Every IQ scheme mirrors exactly on a heterogeneous (mixed-profile)
/// workload — the case where the two threads genuinely differ.
#[test]
fn every_iq_scheme_mirrors_on_program_swap() {
    let cfg = mirror_cfg(MachineConfig::iq_study(32));
    let w = workload("mixes/mix.2.1");
    for iq in SchemeKind::all() {
        mirror_case(&cfg, iq, RegFileSchemeKind::Shared, &w);
    }
}

/// Every RF scheme mirrors too (bounded register files, CSSP steering).
#[test]
fn every_rf_scheme_mirrors_on_program_swap() {
    let cfg = mirror_cfg(MachineConfig::rf_study(64));
    let w = workload("ISPEC-FSPEC/mix.2.1");
    for rf in RegFileSchemeKind::all() {
        mirror_case(&cfg, SchemeKind::Cssp, rf, &w);
    }
}

/// Same-profile, different-seed threads: the orientation hash falls back
/// to the seed bytes; the mirror must still be exact.
#[test]
fn same_profile_different_seed_mirrors() {
    let cfg = mirror_cfg(MachineConfig::iq_study(32));
    let w = workload("DH/ilp.2.1");
    assert_eq!(w.traces[0].profile.name, w.traces[1].profile.name);
    assert_ne!(w.traces[0].seed, w.traces[1].seed);
    mirror_case(&cfg, SchemeKind::Cssp, RegFileSchemeKind::Shared, &w);
}

/// The counter-adaptive schemes mirror too. This is the strongest case:
/// the epoch re-apportioning must itself be covariant with the
/// relabeling — the stall counters swap threads and clusters, the
/// donor/receiver pick (`argmax`/`argmin` with ties resolving to
/// hi == lo, i.e. no move) swaps with them, and the resulting share
/// matrices stay exact mirrors across every epoch boundary. A short
/// epoch makes many adaptation steps fire inside the run.
#[test]
fn adaptive_schemes_mirror_on_program_swap() {
    let mut cfg = mirror_cfg(MachineConfig::rf_study(96));
    // 96 regs/cluster/class: the CARF share (96) sits above the rename
    // floor (64), so the RF cap genuinely moves during the run.
    cfg.adaptive_epoch = 256;
    let w = workload("mixes/mix.2.1");
    mirror_case(&cfg, SchemeKind::Caiq, RegFileSchemeKind::Carf, &w);
    mirror_case(&cfg, SchemeKind::Caiq, RegFileSchemeKind::Shared, &w);
    mirror_case(&cfg, SchemeKind::Cssp, RegFileSchemeKind::Carf, &w);
}

/// Same-profile adaptive mirror: stall patterns of the two threads are
/// statistically alike but not identical (different seeds), so epochs
/// see small imbalances in both directions — the hysteresis band and
/// the tie rule must treat them symmetrically.
#[test]
fn adaptive_schemes_mirror_with_same_profile_threads() {
    let mut cfg = mirror_cfg(MachineConfig::rf_study(96));
    cfg.adaptive_epoch = 256;
    cfg.adaptive_hysteresis = 0; // the most trigger-happy setting
    let w = workload("DH/ilp.2.1");
    assert_eq!(w.traces[0].profile.name, w.traces[1].profile.name);
    mirror_case(&cfg, SchemeKind::Caiq, RegFileSchemeKind::Carf, &w);
}

/// Without symmetric scheduling the historical tie-breaks (thread 0 /
/// cluster 0 first) stay in place — the orientation bit must be 0 for
/// both orders, i.e. the mode is genuinely opt-in.
#[test]
fn historical_mode_is_unchanged_by_swap_only_in_orientation() {
    let cfg = MachineConfig::iq_study(32);
    assert!(!cfg.symmetric_sched);
    let w = workload("mixes/mix.2.1");
    // Not a mirror assertion — just that both orders run and produce the
    // same *total* work (the mirror property needs symmetric_sched).
    let fwd = run(
        &cfg,
        SchemeKind::Icount,
        RegFileSchemeKind::Shared,
        &w.traces,
    );
    let rev_traces = [w.traces[1].clone(), w.traces[0].clone()];
    let rev = run(
        &cfg,
        SchemeKind::Icount,
        RegFileSchemeKind::Shared,
        &rev_traces,
    );
    let total = |r: &MirrorRun| r.result.stats.committed.iter().sum::<u64>();
    assert!(total(&fwd) > 0 && total(&rev) > 0);
}
