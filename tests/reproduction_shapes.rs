//! Cheap versions of the paper's qualitative claims, checked end-to-end on
//! a handful of workloads. The full quantitative reproduction lives in
//! `csmt-experiments` (see EXPERIMENTS.md); these tests pin the *shape* so
//! regressions that would invalidate the reproduction fail CI.

use clustered_smt::prelude::*;

fn tp(iq: SchemeKind, rf: RegFileSchemeKind, cfg: MachineConfig, name: &str) -> f64 {
    let workloads = suite();
    let w = workloads.iter().find(|w| w.name == name).expect("workload");
    SimBuilder::new(cfg)
        .iq_scheme(iq)
        .rf_scheme(rf)
        .workload(w)
        .warmup(2_000)
        .commit_target(4_000)
        .run()
        .throughput()
}

#[test]
fn partitioned_schemes_beat_icount_on_mixed_workloads() {
    // §5.1: static partitioning protects a thread from its stalled
    // partner. Individual workloads vary; the claim holds on average, so
    // assert on the mean over a few MIX workloads.
    let cfg = || MachineConfig::iq_study(32);
    let names = ["mixes/mix.2.1", "mixes/mix.2.2", "mixes/mix.2.4"];
    let mean = |iq: SchemeKind| {
        names
            .iter()
            .map(|n| tp(iq, RegFileSchemeKind::Shared, cfg(), n))
            .sum::<f64>()
            / names.len() as f64
    };
    let icount = mean(SchemeKind::Icount);
    let cssp = mean(SchemeKind::Cssp);
    let cspsp = mean(SchemeKind::Cspsp);
    assert!(
        cssp > icount,
        "CSSP {cssp} must beat Icount {icount} on average"
    );
    assert!(
        cspsp > icount,
        "CSPSP {cspsp} must beat Icount {icount} on average"
    );
}

#[test]
fn pc_never_communicates_and_loses_to_cssp_on_ilp_pair() {
    // §5.1: statically binding threads to clusters kills workload balance.
    let workloads = suite();
    let w = workloads.iter().find(|w| w.name == "DH/ilp.2.1").unwrap();
    let run = |iq| {
        SimBuilder::new(MachineConfig::iq_study(32))
            .iq_scheme(iq)
            .workload(w)
            .warmup(2_000)
            .commit_target(4_000)
            .run()
    };
    let pc = run(SchemeKind::Pc);
    let cssp = run(SchemeKind::Cssp);
    assert_eq!(pc.stats.copies_retired, 0, "PC must not communicate");
    assert!(cssp.stats.copies_retired > 0, "CSSP must communicate");
    assert!(
        cssp.throughput() > pc.throughput(),
        "CSSP {} must beat PC {} on an ILP pair",
        cssp.throughput(),
        pc.throughput()
    );
}

#[test]
fn static_rf_partition_loses_on_disjoint_demand_cdprf_recovers() {
    // §5.2 / Figure 9: ISPEC-FSPEC pairs have nearly disjoint register
    // demand; halving each file statically starves one thread. The dynamic
    // scheme must recover (a big part of) the loss.
    let cfg = || MachineConfig::rf_study(64);
    let name = "ISPEC-FSPEC/mix.2.1";
    let shared = tp(SchemeKind::Cssp, RegFileSchemeKind::Shared, cfg(), name);
    let cssprf = tp(SchemeKind::Cssp, RegFileSchemeKind::Cssprf, cfg(), name);
    let cdprf = tp(SchemeKind::Cssp, RegFileSchemeKind::Cdprf, cfg(), name);
    assert!(
        cssprf < shared * 0.97,
        "static partition should lose: {cssprf} vs {shared}"
    );
    assert!(
        cdprf > cssprf,
        "CDPRF {cdprf} must recover over CSSPRF {cssprf}"
    );
    assert!(
        cdprf > shared * 0.9,
        "CDPRF {cdprf} must be close to shared {shared}"
    );
}

#[test]
fn cssprf_never_beats_cisprf_much() {
    // §5.2: the cluster-sensitive RF scheme conflicts with the IQ scheme's
    // steering and always performs worse than (or like) cluster-insensitive.
    let cfg = || MachineConfig::rf_study(64);
    for name in ["ISPEC-FSPEC/mix.2.1", "FSPEC00/ilp.2.1"] {
        let cssprf = tp(SchemeKind::Cssp, RegFileSchemeKind::Cssprf, cfg(), name);
        let cisprf = tp(SchemeKind::Cssp, RegFileSchemeKind::Cisprf, cfg(), name);
        assert!(
            cssprf <= cisprf * 1.05,
            "{name}: CSSPRF {cssprf} should not beat CISPRF {cisprf}"
        );
    }
}

#[test]
fn flush_plus_releases_resources() {
    let workloads = suite();
    let w = workloads
        .iter()
        .find(|w| w.name == "server/mem.2.1")
        .unwrap();
    let r = SimBuilder::new(MachineConfig::iq_study(32))
        .iq_scheme(SchemeKind::FlushPlus)
        .workload(w)
        .warmup(1_000)
        .commit_target(2_000)
        .run();
    assert!(
        r.stats.flushes > 0,
        "memory-bound pair must trigger flushes"
    );
    assert!(r.stats.squashed > 0);
}
