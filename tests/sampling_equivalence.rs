//! Statistical equivalence of sampled and full simulation.
//!
//! A sampled run (`--sample`) replaces one contiguous detailed run with
//! N short detailed windows reached by architectural fast-forward. This
//! suite locks down the contract that makes that substitution honest:
//!
//! 1. the sampled throughput estimate lands within its own reported 95%
//!    confidence interval (modestly widened, see below) of the full-run
//!    golden value, for the fig2-slice configs the bench harness also
//!    tracks;
//! 2. the reported half-width shrinks as the interval count grows —
//!    more sampling genuinely buys a tighter error bar;
//! 3. sampled runs are deterministic: same spec, same bytes.
//!
//! On the widening: the Student-t interval captures *within-sample*
//! variance (program-phase heterogeneity across windows). It cannot see
//! the systematic component — finite per-window warm-up reconstructs
//! microarchitectural state imperfectly, and evenly spaced windows can
//! alias against program periodicity. Empirically that component stays
//! well under half of the statistical width at these parameters, so the
//! test asserts |full − mean| ≤ 1.5 × half-width: tight enough to catch
//! a broken fast-forward (which shifts estimates by whole IPC points),
//! honest enough not to flake on the bias the CI provably cannot model.

use csmt_core::Simulator;
use csmt_experiments::bench::{SLICE_COMBOS, SLICE_WORKLOADS};
use csmt_experiments::sample::{self, SampleStats};
use csmt_trace::suite::{suite, Workload};
use csmt_types::{MachineConfig, RegFileSchemeKind, SampleSpec, SchemeKind};

const TARGET: u64 = 20_000;
const MAX_CYCLES: u64 = 60_000_000;

fn find(name: &str) -> Workload {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("no workload {name}"))
}

fn full_throughput(w: &Workload, iq: SchemeKind, size: usize) -> f64 {
    let cfg = MachineConfig::iq_study(size);
    let mut sim = Simulator::new(cfg, iq, RegFileSchemeKind::Shared, &w.traces);
    sim.run_with_warmup(500, TARGET, MAX_CYCLES).throughput()
}

fn sampled(w: &Workload, iq: SchemeKind, size: usize, intervals: u64) -> SampleStats {
    let cfg = MachineConfig::iq_study(size);
    let spec = SampleSpec {
        intervals,
        warmup: 1_500,
        detail: 1_000,
    };
    sample::sampled_run(
        &cfg,
        iq,
        RegFileSchemeKind::Shared,
        &w.traces,
        spec,
        TARGET,
        MAX_CYCLES,
        false,
        None,
        None,
    )
    .1
}

/// Contract 1: every fig2-slice config's full-run throughput lands
/// within 1.5 half-widths of the sampled estimate.
#[test]
fn sampled_estimate_contains_full_run_value() {
    for name in SLICE_WORKLOADS {
        let w = find(name);
        for (iq, size) in SLICE_COMBOS {
            let full = full_throughput(&w, iq, size);
            let stats = sampled(&w, iq, size, 10);
            let (mean, half) = stats.throughput_ci();
            assert!(half > 0.0, "{name} {iq:?}/{size}: degenerate zero-width CI");
            let err = (full - mean).abs();
            assert!(
                err <= 1.5 * half,
                "{name} {iq:?}/{size}: full={full:.4} outside sampled \
                 {mean:.4} ± 1.5×{half:.4} (|err|={err:.4})"
            );
        }
    }
}

/// Contract 2: quadrupling the interval count tightens the error bar.
/// (1/√N scaling plus the t-factor dropping from 3.18 to 2.13 predicts
/// roughly a 3× shrink; asserting strict decrease keeps the test robust
/// to phase heterogeneity between the two interval layouts.)
#[test]
fn half_width_shrinks_with_more_intervals() {
    for name in ["DH/ilp.2.1", "mixes/mix.2.3"] {
        let w = find(name);
        let h4 = sampled(&w, SchemeKind::Cssp, 32, 4).throughput_ci().1;
        let h16 = sampled(&w, SchemeKind::Cssp, 32, 16).throughput_ci().1;
        assert!(
            h16 < h4,
            "{name}: half-width grew from {h4:.4} (N=4) to {h16:.4} (N=16)"
        );
    }
}

/// Contract 3: a sampled run is a pure function of its inputs — the
/// sidecar (and therefore the pooled result) is byte-identical across
/// repetitions.
#[test]
fn sampled_runs_are_deterministic() {
    let w = find("DH/ilp.2.1");
    let a = sampled(&w, SchemeKind::Cssp, 32, 4);
    let b = sampled(&w, SchemeKind::Cssp, 32, 4);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "sampled sidecars must be bit-identical across runs"
    );
    assert_eq!(
        serde_json::to_string(&a.pooled()).unwrap(),
        serde_json::to_string(&b.pooled()).unwrap()
    );
}
