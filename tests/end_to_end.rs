//! Cross-crate integration: drive the full stack (suite → simulator →
//! metrics) through the public facade only.

use clustered_smt::prelude::*;

fn quick(
    iq: SchemeKind,
    rf: RegFileSchemeKind,
    cfg: MachineConfig,
    name: &str,
    target: u64,
) -> SimResult {
    let workloads = suite();
    let w = workloads.iter().find(|w| w.name == name).expect("workload");
    SimBuilder::new(cfg)
        .iq_scheme(iq)
        .rf_scheme(rf)
        .workload(w)
        .warmup(500)
        .commit_target(target)
        .run()
}

#[test]
fn facade_simulates_suite_workload() {
    let r = quick(
        SchemeKind::Icount,
        RegFileSchemeKind::Shared,
        MachineConfig::baseline(),
        "DH/ilp.2.1",
        2000,
    );
    assert_eq!(r.num_threads, 2);
    assert!(r.stats.committed[0] >= 2000);
    assert!(r.stats.committed[1] >= 2000);
    assert!(r.throughput() > 0.2 && r.throughput() <= 6.0);
}

#[test]
fn facade_runs_are_deterministic() {
    let a = quick(
        SchemeKind::Cssp,
        RegFileSchemeKind::Cdprf,
        MachineConfig::rf_study(64),
        "office/mix.2.1",
        1500,
    );
    let b = quick(
        SchemeKind::Cssp,
        RegFileSchemeKind::Cdprf,
        MachineConfig::rf_study(64),
        "office/mix.2.1",
        1500,
    );
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.committed, b.stats.committed);
    assert_eq!(a.stats.copies_retired, b.stats.copies_retired);
}

#[test]
fn every_scheme_pair_composes() {
    // IQ × RF scheme cross-product all run to completion on one workload.
    for iq in SchemeKind::all() {
        for rf in RegFileSchemeKind::all() {
            let r = quick(iq, rf, MachineConfig::rf_study(64), "DH/ilp.2.1", 600);
            assert!(
                r.stats.committed[0] >= 600 && r.stats.committed[1] >= 600,
                "{iq}+{rf} did not complete: {:?} in {} cycles",
                r.stats.committed,
                r.stats.cycles
            );
        }
    }
}

#[test]
fn single_thread_baseline_via_facade() {
    let workloads = suite();
    let w = &workloads[0];
    let r = SimBuilder::new(MachineConfig::baseline())
        .single(&w.traces[0])
        .warmup(500)
        .commit_target(2000)
        .run();
    assert_eq!(r.num_threads, 1);
    assert!(r.ipc(ThreadId(0)) > 0.1);
}

#[test]
fn fairness_metric_in_unit_range() {
    let r = quick(
        SchemeKind::Icount,
        RegFileSchemeKind::Shared,
        MachineConfig::baseline(),
        "server/mix.2.1",
        1500,
    );
    let workloads = suite();
    let w = workloads
        .iter()
        .find(|w| w.name == "server/mix.2.1")
        .unwrap();
    let alone: Vec<f64> = w
        .traces
        .iter()
        .map(|s| {
            SimBuilder::new(MachineConfig::baseline())
                .single(s)
                .warmup(500)
                .commit_target(1500)
                .run()
                .ipc(ThreadId(0))
        })
        .collect();
    let f = fairness(
        [r.ipc(ThreadId(0)), r.ipc(ThreadId(1))],
        [alone[0], alone[1]],
    );
    assert!(f > 0.0 && f <= 1.0 + 1e-9, "fairness={f}");
}

#[test]
fn custom_profile_through_facade() {
    use clustered_smt::trace::suite::TraceSpec;
    let mut p = TraceProfile::balanced("custom");
    p.mix = [0.5, 0.0, 0.1, 0.0, 0.2, 0.1, 0.1, 0.0];
    p.validate().unwrap();
    let r = SimBuilder::new(MachineConfig::baseline())
        .push_trace(TraceSpec {
            profile: p.clone(),
            seed: 1,
        })
        .push_trace(TraceSpec {
            profile: p,
            seed: 2,
        })
        .warmup(200)
        .commit_target(800)
        .run();
    assert!(r.throughput() > 0.0);
}
