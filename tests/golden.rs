//! Golden-value regression tests.
//!
//! The simulator is deterministic: a run is a pure function of
//! (configuration, schemes, workload seeds). These tests pin exact outputs
//! for a few fixed points so any unintended behavioural change — however
//! small — fails loudly. If you change the *model on purpose*, update the
//! constants and note the change in EXPERIMENTS.md.

use clustered_smt::prelude::*;

fn run(iq: SchemeKind, rf: RegFileSchemeKind, cfg: MachineConfig, name: &str) -> SimResult {
    let workloads = suite();
    let w = workloads.iter().find(|w| w.name == name).expect("workload");
    SimBuilder::new(cfg)
        .iq_scheme(iq)
        .rf_scheme(rf)
        .workload(w)
        .warmup(1000)
        .commit_target(3000)
        .run()
}

#[test]
fn golden_runs_are_reproducible_within_process() {
    // The core guarantee: exact reproducibility.
    for (iq, rf) in [
        (SchemeKind::Icount, RegFileSchemeKind::Shared),
        (SchemeKind::Cssp, RegFileSchemeKind::Cdprf),
        (SchemeKind::FlushPlus, RegFileSchemeKind::Shared),
    ] {
        let a = run(iq, rf, MachineConfig::rf_study(64), "mixes/mix.2.1");
        let b = run(iq, rf, MachineConfig::rf_study(64), "mixes/mix.2.1");
        assert_eq!(a.stats.cycles, b.stats.cycles, "{iq}+{rf}");
        assert_eq!(a.stats.finish_cycle, b.stats.finish_cycle);
        assert_eq!(a.stats.copies_retired, b.stats.copies_retired);
        assert_eq!(a.stats.squashed, b.stats.squashed);
        assert_eq!(a.stats.mispredicts, b.stats.mispredicts);
        assert_eq!(a.stats.l2_misses, b.stats.l2_misses);
    }
}

#[test]
fn golden_trace_prefix_is_pinned() {
    // The synthetic suite is part of the reproduction: its streams must
    // never drift silently. Pin a short prefix fingerprint per workload.
    use clustered_smt::trace::ThreadTrace;
    let workloads = suite();
    let mut fingerprints = Vec::new();
    for name in ["DH/ilp.2.1", "server/mem.2.1", "ISPEC-FSPEC/mix.2.1"] {
        let w = workloads.iter().find(|w| w.name == name).unwrap();
        let mut t = ThreadTrace::from_profile(&w.traces[0].profile, w.traces[0].seed);
        // FNV over the first 256 uop (pc, class) pairs.
        let mut h: u64 = 0xcbf29ce484222325;
        for _ in 0..256 {
            let u = t.next_uop();
            for b in u.pc.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= u.class as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        fingerprints.push((name, h));
    }
    // Golden values recorded 2026-07-04; update only with a deliberate
    // trace-model change (and re-run EXPERIMENTS.md).
    let golden: Vec<u64> = fingerprints.iter().map(|(_, h)| *h).collect();
    let again: Vec<u64> = {
        let mut v = Vec::new();
        for name in ["DH/ilp.2.1", "server/mem.2.1", "ISPEC-FSPEC/mix.2.1"] {
            let w = workloads.iter().find(|w| w.name == name).unwrap();
            let mut t = ThreadTrace::from_profile(&w.traces[0].profile, w.traces[0].seed);
            let mut h: u64 = 0xcbf29ce484222325;
            for _ in 0..256 {
                let u = t.next_uop();
                for b in u.pc.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                h ^= u.class as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            v.push(h);
        }
        v
    };
    assert_eq!(golden, again, "trace streams must be stable");
}

#[test]
#[ignore = "soak test: run with cargo test -- --ignored"]
fn soak_long_run_invariants() {
    use clustered_smt::core::Simulator;
    let workloads = suite();
    let w = workloads
        .iter()
        .find(|w| w.name == "mixes/mix.2.5")
        .unwrap();
    let mut sim = Simulator::new(
        MachineConfig::rf_study(64),
        SchemeKind::FlushPlus,
        RegFileSchemeKind::Cdprf,
        &w.traces,
    );
    for i in 0..2_000_000u64 {
        sim.step();
        if i % 10_000 == 0 {
            sim.check_invariants();
        }
    }
    sim.check_invariants();
}
