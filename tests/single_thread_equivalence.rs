//! Single-thread equivalence: with thread 1 idle, every resource
//! assignment scheme degenerates to the same machine.
//!
//! The schemes of Tables 3–4 only differ in how they *arbitrate between
//! threads* — rename selection, occupancy caps, flush/stall policies,
//! register budgets. With one runnable thread there is nothing to
//! arbitrate: Icount, Stall, Flush+, CSSP and CSSP+CDPRF must all commit
//! the *identical* architectural uop stream for thread 0, byte for byte
//! in `(pc, class)` terms.
//!
//! The comparison is on the committed `(pc, class)` stream, not sequence
//! numbers or cycle times: Flush+ still flushes a lone missing thread
//! (renumbering refetched uops) and Stall changes timing — neither may
//! change *what* commits.

use clustered_smt::prelude::*;
use csmt_core::{Validator, Violation};
use csmt_types::OpClass;
use std::sync::{Arc, Mutex};

type Streams = Arc<Mutex<Vec<Vec<(u64, OpClass)>>>>;

/// Records every thread's committed non-copy `(pc, class)` stream.
struct StreamRecorder(Streams);

impl Validator for StreamRecorder {
    fn name(&self) -> &'static str {
        "stream-recorder"
    }
    fn on_retire(&mut self, sim: &Simulator, id: u32, _out: &mut Vec<Violation>) {
        let v = sim.uop_view(id);
        if !v.is_copy {
            self.0.lock().unwrap()[v.thread.idx()].push((v.pc, v.class));
        }
    }
}

/// Run `traces` on `cfg` until every trace-backed thread has committed
/// `target` non-copy uops; return each thread's stream truncated there.
fn committed_streams(
    cfg: MachineConfig,
    iq: SchemeKind,
    rf: RegFileSchemeKind,
    traces: &[csmt_trace::suite::TraceSpec],
    target: usize,
) -> Vec<Vec<(u64, OpClass)>> {
    let active = traces.len();
    let mut sim = Simulator::new(cfg, iq, rf, traces);
    let streams: Streams = Arc::new(Mutex::new(vec![Vec::new(); active]));
    sim.add_validator(Box::new(StreamRecorder(streams.clone())));
    let mut guard = 0u64;
    while streams.lock().unwrap().iter().any(|s| s.len() < target) {
        sim.step();
        guard += 1;
        assert!(
            guard < 5_000_000,
            "{iq}/{rf:?}: a thread starved ({:?} commits after {guard} cycles)",
            streams
                .lock()
                .unwrap()
                .iter()
                .map(|s| s.len())
                .collect::<Vec<_>>()
        );
    }
    let mut out = Arc::try_unwrap(streams)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|arc| arc.lock().unwrap().clone());
    for s in &mut out {
        s.truncate(target);
    }
    out
}

const TARGET: usize = 3_000;

/// Run thread 0 alone (thread 1's context exists but never fetches) and
/// return its first `TARGET` committed non-copy uops.
fn committed_stream(iq: SchemeKind, rf: RegFileSchemeKind, w: &Workload) -> Vec<(u64, OpClass)> {
    let mut sim = Simulator::new(MachineConfig::rf_study(64), iq, rf, &w.traces);
    sim.debug_disable_fetch_thread(1);
    let streams: Streams = Arc::new(Mutex::new(vec![Vec::new(); 2]));
    sim.add_validator(Box::new(StreamRecorder(streams.clone())));
    // Raw step loop: run_with_warmup would wait forever for the idle
    // thread to reach its commit target.
    let mut guard = 0u64;
    while streams.lock().unwrap()[0].len() < TARGET {
        sim.step();
        guard += 1;
        assert!(
            guard < 5_000_000,
            "{iq}/{rf:?}: thread 0 starved with thread 1 idle \
             ({} commits after {guard} cycles)",
            streams.lock().unwrap()[0].len()
        );
    }
    let mut s = Arc::try_unwrap(streams)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_else(|arc| arc.lock().unwrap().clone())
        .swap_remove(0);
    s.truncate(TARGET);
    s
}

#[test]
fn all_schemes_commit_identical_stream_with_idle_second_thread() {
    let w = suite()
        .into_iter()
        .find(|w| w.name == "server/mem.2.1")
        .expect("workload in suite");
    let combos: &[(SchemeKind, RegFileSchemeKind)] = &[
        (SchemeKind::Icount, RegFileSchemeKind::Shared),
        (SchemeKind::Stall, RegFileSchemeKind::Shared),
        (SchemeKind::FlushPlus, RegFileSchemeKind::Shared),
        (SchemeKind::Cssp, RegFileSchemeKind::Shared),
        (SchemeKind::Cssp, RegFileSchemeKind::Cdprf),
    ];
    let reference = committed_stream(combos[0].0, combos[0].1, &w);
    assert_eq!(reference.len(), TARGET);
    // The reference itself must be the program's architectural prefix.
    let mut gen = csmt_trace::ThreadTrace::from_profile(&w.traces[0].profile, w.traces[0].seed);
    for (i, &(pc, class)) in reference.iter().enumerate() {
        let want = gen.next_uop();
        assert_eq!(
            (pc, class),
            (want.pc, want.class),
            "commit #{i} diverges from the architectural stream"
        );
    }
    for &(iq, rf) in &combos[1..] {
        let stream = committed_stream(iq, rf, &w);
        assert_eq!(
            stream, reference,
            "{iq}/{rf:?} committed a different stream than {}/{:?} \
             with thread 1 idle",
            combos[0].0, combos[0].1
        );
    }
}

/// Scaled shapes: in a 4-thread run, each thread's committed stream is
/// the identical architectural stream its solo run commits — contention
/// changes *when* uops commit, never *what* commits.
#[test]
fn each_thread_of_a_scaled_run_matches_its_solo_run() {
    const TARGET_N: usize = 800;
    let bundle = csmt_trace::bundles(4)
        .into_iter()
        .find(|b| b.name == "ISPEC00/mix.4")
        .expect("bundle exists");
    let mut cfg = MachineConfig::rf_study(128); // exactly the 4-thread floor
    cfg.num_threads = 4;
    cfg.num_clusters = 2;
    for (iq, rf) in [
        (SchemeKind::Icount, RegFileSchemeKind::Shared),
        (SchemeKind::Cssp, RegFileSchemeKind::Cdprf),
    ] {
        let smt = committed_streams(cfg.clone(), iq, rf, &bundle.traces, TARGET_N);
        for (t, spec) in bundle.traces.iter().enumerate() {
            let solo = committed_streams(cfg.clone(), iq, rf, std::slice::from_ref(spec), TARGET_N);
            assert_eq!(
                smt[t], solo[0],
                "{iq}/{rf:?}: thread {t} of the 4-thread run diverged from \
                 its solo run on the same machine"
            );
        }
    }
}
