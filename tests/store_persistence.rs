//! Facade-level integration test: a sweep backed by the persistent store
//! survives a "process restart" (a second `Sweeps` over the same
//! directory) without re-simulating anything.

use clustered_smt::experiments::runner::{CfgKind, ExpOptions, Sweeps};
use clustered_smt::prelude::*;
use clustered_smt::store::{EventKind, Journal};

fn opts() -> ExpOptions {
    ExpOptions {
        commit_target: 400,
        warmup: 100,
        max_cycles: 2_000_000,
        jobs: 0,
        verbose: false,
        validate: false,
        batch: false,
        sample: None,
    }
}

#[test]
fn warm_sweep_serves_everything_from_disk() {
    let dir = std::env::temp_dir().join(format!("csmt-facade-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let workloads: Vec<Workload> = suite().into_iter().take(2).collect();
    let combos = [
        (
            SchemeKind::Icount,
            RegFileSchemeKind::Shared,
            CfgKind::IqStudy { iq: 32 },
        ),
        (
            SchemeKind::Cssp,
            RegFileSchemeKind::Cdprf,
            CfgKind::RfStudy { regs: 64 },
        ),
    ];

    // Cold process: 2 workloads × 2 combos = 4 simulations, 4 records.
    let cold_tput = {
        let sweeps = Sweeps::with_store(opts(), &dir).unwrap();
        sweeps.smt_batch(&workloads, &combos);
        let c = sweeps.counters();
        let s = c.store.unwrap();
        assert_eq!((s.hits, s.misses, s.puts), (0, 4, 4));
        assert_eq!(c.orch.completed, 4);
        sweeps
            .get(&Sweeps::smt_key(
                &workloads[0],
                combos[0].0,
                combos[0].1,
                combos[0].2,
            ))
            .throughput()
    };

    // Warm process: same batch, zero simulations, identical numbers.
    let sweeps = Sweeps::with_store(opts(), &dir).unwrap();
    sweeps.smt_batch(&workloads, &combos);
    let c = sweeps.counters();
    let s = c.store.unwrap();
    assert_eq!(
        (s.hits, s.misses, s.puts),
        (4, 0, 0),
        "warm run must be 100% cached"
    );
    assert_eq!(
        c.orch.completed, 0,
        "no simulator invocations for cached keys"
    );
    let warm_tput = sweeps
        .get(&Sweeps::smt_key(
            &workloads[0],
            combos[0].0,
            combos[0].1,
            combos[0].2,
        ))
        .throughput();
    assert_eq!(cold_tput, warm_tput, "cached result must be bit-identical");

    // The journal carries both processes' events with identity fields.
    let events = Journal::read(dir.join("journal.jsonl"));
    assert!(events.iter().any(|e| {
        e.run_id == 2 && matches!(&e.kind, EventKind::CacheHit { job } if job.iq == "Icount")
    }));
    let _ = std::fs::remove_dir_all(&dir);
}
