//! Minimal `serde` stand-in.
//!
//! Instead of the visitor-based `Serializer`/`Deserializer` machinery, types
//! convert to and from a small [`Value`] tree. The derive macros (re-exported
//! from the local `serde_derive`) generate `to_value`/`from_value` impls with
//! real-serde-compatible JSON shapes: structs become objects, newtype structs
//! are transparent, enums are externally tagged.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree; the interchange format between typed values
/// and `serde_json`'s text layer. Object keys keep insertion order so output
/// is deterministic and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (the common case for stats/configs).
    UInt(u64),
    /// Negative integers only; non-negative values normalize to `UInt`.
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error: what was expected, and a short rendering of what
/// was found. Carried through `serde_json::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn expected(what: &str, found: &Value) -> DeError {
        let found = match found {
            Value::Null => "null".to_string(),
            Value::Bool(b) => format!("bool {b}"),
            Value::UInt(n) => format!("integer {n}"),
            Value::Int(n) => format!("integer {n}"),
            Value::Float(x) => format!("number {x}"),
            Value::Str(s) => format!("string {s:?}"),
            Value::Array(_) => "array".to_string(),
            Value::Object(_) => "object".to_string(),
        };
        DeError(format!("expected {what}, found {found}"))
    }

    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` in {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Fetch a required object field (derive-generated code calls this).
pub fn field<'v>(ty: &str, obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(ty, name))
}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u64)
                } else {
                    Value::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    // Non-finite floats render as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, found length {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError("array length mismatch".to_string()))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:literal))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                if items.len() != $len {
                    return Err(DeError(format!(
                        "expected tuple of length {}, found array of length {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0; 1)
    (A.0, B.1; 2)
    (A.0, B.1, C.2; 3)
    (A.0, B.1, C.2, D.3; 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(
            <Option<u8>>::from_value(&None::<u8>.to_value()),
            Ok(None::<u8>)
        );
        let arr = [[1u64, 2], [3, 4]];
        assert_eq!(<[[u64; 2]; 2]>::from_value(&arr.to_value()), Ok(arr));
        let pair = ("x".to_string(), vec![1.5f64]);
        assert_eq!(<(String, Vec<f64>)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(bool::from_value(&Value::Str("no".into())).is_err());
        assert!(<[u8; 2]>::from_value(&Value::Array(vec![Value::UInt(1)])).is_err());
    }
}
