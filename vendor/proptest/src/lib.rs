//! Minimal `proptest` stand-in.
//!
//! Provides the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro (with `#![proptest_config(...)]`, `x in
//! strategy`, and `x: Type` parameter forms), `prop_assert!`-family macros,
//! range/tuple/array/vec/option/select strategies, `prop_map`, and `any`.
//!
//! Cases are generated from a splitmix64 stream seeded deterministically
//! from the test name and case index, so failures are reproducible run to
//! run. There is no shrinking: a failure reports the case index and the
//! assertion message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---- deterministic RNG ----

/// splitmix64 stream; good enough statistical quality for test-case
/// generation and fully deterministic.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, perturbed by the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` may not be zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---- strategy core ----

pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Randomly permute a generated `Vec` (Fisher-Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }
}

pub struct Shuffle<S>(S);

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.0.generate(rng);
        for i in (1..v.len()).rev() {
            let j = rng.below((i + 1) as u64) as usize;
            v.swap(i, j);
        }
        v
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---- integer / float / bool strategies ----

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % width;
                (lo as i128 + off as i128) as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyValue<$t>;

            fn arbitrary() -> AnyValue<$t> {
                AnyValue(PhantomData)
            }
        }

        impl Strategy for AnyValue<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategy from a regex-like pattern, mirroring proptest's
/// `&str`-as-strategy. Supports the subset used here: literal characters,
/// `\`-escapes, character classes `[...]` with ranges, and the quantifiers
/// `{n}`, `{m,n}`, `*`, `+`, `?` (with `*`/`+` capped at 8 repeats).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unterminated character class in pattern")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!alphabet.is_empty(), "empty character class in pattern");
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated repetition in pattern")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad repetition bound"),
                            hi.parse().expect("bad repetition bound"),
                        ),
                        None => {
                            let n: usize = body.parse().expect("bad repetition count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Full-range strategy returned by [`any`].
pub struct AnyValue<T>(PhantomData<T>);

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = AnyValue<bool>;

    fn arbitrary() -> AnyValue<bool> {
        AnyValue(PhantomData)
    }
}

impl Strategy for AnyValue<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---- tuple strategies ----

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// ---- composite strategy modules ----

pub mod array {
    use super::{Strategy, TestRng};

    pub struct Uniform2<S>(S);

    /// `[S::Value; 2]` with both elements drawn from the same strategy.
    pub fn uniform2<S: Strategy>(s: S) -> Uniform2<S> {
        Uniform2(s)
    }

    impl<S: Strategy> Strategy for Uniform2<S> {
        type Value = [S::Value; 2];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            [self.0.generate(rng), self.0.generate(rng)]
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element count bounds for [`vec`]; `max` is inclusive.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `Option<S::Value>`, `None` roughly one case in four.
    pub fn of<S: Strategy>(s: S) -> OptionStrategy<S> {
        OptionStrategy(s)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T>(Vec<T>);

    /// One of the given values, uniformly.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    pub struct Subsequence<T> {
        values: Vec<T>,
        min: usize,
        max: usize,
    }

    /// An order-preserving random subsequence of `values`, with a length
    /// drawn uniformly from `sizes`.
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        sizes: std::ops::RangeInclusive<usize>,
    ) -> Subsequence<T> {
        let (min, max) = (*sizes.start(), *sizes.end());
        assert!(min <= max, "empty size range");
        assert!(
            max <= values.len(),
            "subsequence size exceeds the value count"
        );
        Subsequence { values, min, max }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let k = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            // Partial Fisher-Yates picks k distinct indices; sorting them
            // restores the source order.
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..k {
                let j = i + rng.below((idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            let mut chosen = idx[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

// ---- runner ----

/// Per-block configuration, set with `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property: generates `config.cases` inputs and runs the test
/// closure on each, panicking (with the case index, for reproduction) on
/// the first failure.
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    mut test: impl FnMut(S::Value) -> Result<(), String>,
) {
    for case in 0..config.cases {
        let mut rng = TestRng::deterministic(name, case);
        let value = strategy.generate(&mut rng);
        if let Err(msg) = test(value) {
            panic!(
                "property `{name}` failed at case {case}/{}: {msg}",
                config.cases
            );
        }
    }
}

// ---- macros ----

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::proptest!(@accum config, ::core::stringify!($name), [], [], ($($params)*), $body);
        }
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr)) => {};
    // Parameter muncher: `pat in strategy` form.
    (@accum $config:ident, $name:expr, [$($pats:tt)*], [$($strats:tt)*],
     ($p:pat in $s:expr, $($rest:tt)*), $body:block) => {
        $crate::proptest!(@accum $config, $name, [$($pats)* $p,], [$($strats)* ($s),],
                          ($($rest)*), $body)
    };
    (@accum $config:ident, $name:expr, [$($pats:tt)*], [$($strats:tt)*],
     ($p:pat in $s:expr), $body:block) => {
        $crate::proptest!(@accum $config, $name, [$($pats)* $p,], [$($strats)* ($s),],
                          (), $body)
    };
    // Parameter muncher: `name: Type` form (uses `any::<Type>()`).
    (@accum $config:ident, $name:expr, [$($pats:tt)*], [$($strats:tt)*],
     ($p:ident : $ty:ty, $($rest:tt)*), $body:block) => {
        $crate::proptest!(@accum $config, $name, [$($pats)* $p,],
                          [$($strats)* ($crate::any::<$ty>()),], ($($rest)*), $body)
    };
    (@accum $config:ident, $name:expr, [$($pats:tt)*], [$($strats:tt)*],
     ($p:ident : $ty:ty), $body:block) => {
        $crate::proptest!(@accum $config, $name, [$($pats)* $p,],
                          [$($strats)* ($crate::any::<$ty>()),], (), $body)
    };
    // All parameters consumed: build the strategy tuple and run.
    (@accum $config:ident, $name:expr, [$($pats:tt)*], [$($strats:tt)*], (), $body:block) => {
        $crate::run_cases(&$config, $name, &($($strats)*),
            |($($pats)*)| -> ::core::result::Result<(), ::std::string::String> {
                $body
                ::core::result::Result::Ok(())
            })
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err(::std::format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        left,
                        right
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err(::std::format!(
                        "assertion failed: `{:?}` != `{:?}`: {}",
                        left,
                        right,
                        ::std::format!($($fmt)+)
                    ));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    return ::core::result::Result::Err(::std::format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        left,
                        right
                    ));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    return ::core::result::Result::Err(::std::format!(
                        "assertion failed: `{:?}` == `{:?}`: {}",
                        left,
                        right,
                        ::std::format!($($fmt)+)
                    ));
                }
            }
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Namespace mirror of proptest's `prop::` module tree.
    pub mod prop {
        pub use crate::{array, collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i32..=4, z: bool, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!(usize::from(z) <= 1);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn composites_generate(
            v in prop::collection::vec((0u8..4, any::<bool>()), 1..9),
            pair in prop::array::uniform2(0usize..5),
            pick in prop::sample::select(vec!["a", "b"]),
            opt in prop::option::of(0u32..3),
            mapped in (0u16..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(pair[0] < 5 && pair[1] < 5);
            prop_assert!(pick == "a" || pick == "b");
            prop_assert!(opt.is_none() || opt.unwrap() < 3);
            prop_assert_eq!(mapped % 2, 0);
            prop_assert_ne!(mapped, 19);
        }

        #[test]
        fn subsequences_preserve_order_and_shuffles_permute(
            sub in prop::sample::subsequence((0..8).collect::<Vec<i32>>(), 1..=8),
            mix in prop::sample::subsequence((0..8).collect::<Vec<i32>>(), 3..=8).prop_shuffle(),
        ) {
            prop_assert!(!sub.is_empty() && sub.len() <= 8);
            prop_assert!(sub.windows(2).all(|w| w[0] < w[1]), "subsequence keeps order");
            let mut sorted = mix.clone();
            sorted.sort_unstable();
            prop_assert!(sorted.windows(2).all(|w| w[0] < w[1]), "shuffle keeps distinctness");
            prop_assert!(sorted.len() >= 3 && sorted.len() <= 8);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, prop::collection::vec(0u8..9, 2..6));
        let a = strat.generate(&mut crate::TestRng::deterministic("det", 7));
        let b = strat.generate(&mut crate::TestRng::deterministic("det", 7));
        assert_eq!(a, b);
    }
}
