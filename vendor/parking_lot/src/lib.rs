//! Minimal `parking_lot` stand-in: a poison-free `Mutex` facade over
//! `std::sync::Mutex` with parking_lot's `lock() -> Guard` signature.

use std::sync::{Mutex as StdMutex, MutexGuard};

/// Mutex whose `lock` never returns a poison error: a panicked holder
/// simply passes the (possibly half-updated) data on, like parking_lot.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
