//! Minimal `serde_derive` stand-in: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` without syn/quote. The input item is parsed by
//! walking the raw token stream, and the impl is emitted as a source string.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields, tuple structs (newtype = transparent),
//!   unit structs
//! - enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde: unit -> `"Name"`, payload -> `{"Name": ...}`)
//!
//! Not supported (panics with a clear message): generics, unions,
//! `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---- token-stream parsing ----

type Toks = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip any run of `#[...]` attributes (incl. doc comments) and a `pub` /
/// `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(toks: &mut Toks) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next(); // pub(crate) / pub(super) restriction
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, found {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive on `{name}`: generic items are not supported by the vendored serde_derive");
    }
    let kind = match (kw.as_str(), toks.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            ItemKind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            ItemKind::Struct(Fields::Unit)
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            ItemKind::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("derive on `{name}`: unsupported {kw} shape near {other:?}"),
    };
    Item { name, kind }
}

/// Field names of a `{ name: Type, ... }` body. Types are skipped by
/// scanning to the next comma at angle-bracket depth zero; parenthesized and
/// bracketed type syntax arrives as atomic groups, so only `<`/`>` need
/// depth tracking.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut toks = ts.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("derive: expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive: expected `:` after field `{name}`, found {other:?}"),
        }
        let mut depth = 0i32;
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        names.push(name);
    }
    names
}

/// Number of fields in a `(Type, ...)` body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut count = 0;
    let mut depth = 0i32;
    let mut in_field = false;
    for t in ts {
        match &t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if in_field {
                        count += 1;
                    }
                    in_field = false;
                    continue;
                }
                _ => in_field = true,
            },
            _ => in_field = true,
        }
    }
    if in_field {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut toks = ts.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("derive: expected variant name, found {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body = g.stream();
                toks.next();
                Fields::Named(parse_named_fields(body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body = g.stream();
                toks.next();
                Fields::Tuple(count_tuple_fields(body))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        for t in toks.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, fields));
    }
    variants
}

// ---- code generation ----

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr}),")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec::Vec::from([{items}]))")
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let entries: String = fields
                .iter()
                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
                .collect();
            format!("::serde::Value::Object(::std::vec::Vec::from([{entries}]))")
        }
        ItemKind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| serialize_variant_arm(name, v, fields))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn serialize_variant_arm(name: &str, variant: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "{name}::{variant} => \
               ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
        ),
        Fields::Tuple(1) => {
            let entry = obj_entry(variant, "::serde::Serialize::to_value(f0)");
            format!(
                "{name}::{variant}(f0) => \
                   ::serde::Value::Object(::std::vec::Vec::from([{entry}])),"
            )
        }
        Fields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: String = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            let payload = format!("::serde::Value::Array(::std::vec::Vec::from([{items}]))");
            let entry = obj_entry(variant, &payload);
            format!(
                "{name}::{variant}({}) => \
                   ::serde::Value::Object(::std::vec::Vec::from([{entry}])),",
                binders.join(", ")
            )
        }
        Fields::Named(field_names) => {
            let entries: String = field_names
                .iter()
                .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value({f})")))
                .collect();
            let payload = format!("::serde::Value::Object(::std::vec::Vec::from([{entries}]))");
            let entry = obj_entry(variant, &payload);
            format!(
                "{name}::{variant} {{ {} }} => \
                   ::serde::Value::Object(::std::vec::Vec::from([{entry}])),",
                field_names.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => format!(
            "match v {{ \
               ::serde::Value::Null => ::std::result::Result::Ok({name}), \
               _ => ::std::result::Result::Err(::serde::DeError::expected(\"null\", v)), \
             }}"
        ),
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let inits = tuple_field_inits(*n);
            format!(
                "{} ::std::result::Result::Ok({name}({inits}))",
                expect_array(name, *n)
            )
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits = named_field_inits(name, fields);
            format!(
                "let obj = match v {{ \
                   ::serde::Value::Object(fields) => fields.as_slice(), \
                   _ => return ::std::result::Result::Err(\
                          ::serde::DeError::expected(\"struct {name}\", v)), \
                 }}; \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        ItemKind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}

/// Statement binding `items` to the payload array after a length check.
fn expect_array(ty: &str, len: usize) -> String {
    format!(
        "let items = match v {{ \
           ::serde::Value::Array(items) if items.len() == {len} => items.as_slice(), \
           _ => return ::std::result::Result::Err(\
                  ::serde::DeError::expected(\"array of length {len} for {ty}\", v)), \
         }};"
    )
}

fn tuple_field_inits(n: usize) -> String {
    (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
        .collect()
}

fn named_field_inits(ty: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::field(\"{ty}\", obj, \"{f}\")?)?,"
            )
        })
        .collect()
}

fn gen_deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut str_arms = String::new();
    let mut obj_arms = String::new();
    for (variant, fields) in variants {
        match fields {
            Fields::Unit => {
                str_arms.push_str(&format!(
                    "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),"
                ));
            }
            Fields::Tuple(1) => {
                obj_arms.push_str(&format!(
                    "\"{variant}\" => ::std::result::Result::Ok(\
                       {name}::{variant}(::serde::Deserialize::from_value(payload)?)),"
                ));
            }
            Fields::Tuple(n) => {
                let inits = tuple_field_inits(*n);
                let check = expect_array(&format!("{name}::{variant}"), *n)
                    .replace("match v {", "match payload {");
                obj_arms.push_str(&format!(
                    "\"{variant}\" => {{ {check} \
                       ::std::result::Result::Ok({name}::{variant}({inits})) }},"
                ));
            }
            Fields::Named(field_names) => {
                let inits = named_field_inits(&format!("{name}::{variant}"), field_names);
                obj_arms.push_str(&format!(
                    "\"{variant}\" => {{ \
                       let obj = match payload {{ \
                         ::serde::Value::Object(fields) => fields.as_slice(), \
                         _ => return ::std::result::Result::Err(\
                                ::serde::DeError::expected(\
                                  \"object for {name}::{variant}\", payload)), \
                       }}; \
                       ::std::result::Result::Ok({name}::{variant} {{ {inits} }}) }},"
                ));
            }
        }
    }
    let unknown = format!(
        "_ => ::std::result::Result::Err(::serde::DeError(\
           ::std::format!(\"unknown variant `{{}}` of {name}\", tag)))"
    );
    format!(
        "match v {{ \
           ::serde::Value::Str(tag) => match tag.as_str() {{ {str_arms} {unknown} }}, \
           ::serde::Value::Object(fields) if fields.len() == 1 => {{ \
             let (tag, payload) = &fields[0]; \
             match tag.as_str() {{ {obj_arms} {unknown} }} \
           }}, \
           _ => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", v)), \
         }}"
    )
}
