//! Minimal `serde_json` stand-in: render a [`serde::Value`] tree to JSON
//! text (compact or pretty) and parse JSON text back, on top of the
//! `to_value`/`from_value` traits of the vendored `serde`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Parse or conversion error, compatible with `serde_json::Error` call
/// sites (`Display` + `std::error::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---- rendering ----

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip formatting; integral floats
                // print without a fraction and re-parse as integers, which
                // the float Deserialize impl accepts.
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            render_seq(
                items.iter(),
                items.len(),
                ('[', ']'),
                indent,
                level,
                out,
                |item, out| {
                    render(item, indent, level + 1, out);
                },
            );
        }
        Value::Object(fields) => {
            render_seq(
                fields.iter(),
                fields.len(),
                ('{', '}'),
                indent,
                level,
                out,
                |(k, val), out| {
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    render(val, indent, level + 1, out);
                },
            );
        }
    }
}

fn render_seq<I: Iterator>(
    items: I,
    len: usize,
    brackets: (char, char),
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    mut each: impl FnMut(I::Item, &mut String),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        each(item, out);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(brackets.1);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'s> Parser<'s> {
    fn fail(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.fail("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.fail("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.fail("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.fail("invalid keyword"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.fail(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.fail("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Basic-plane code points only; the renderer
                            // never emits surrogate pairs (it writes
                            // non-ASCII directly), so this covers all
                            // self-produced JSON.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.fail("invalid \\u escape"))?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.fail("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.fail("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(n) = rest.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::Int((n as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.fail("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("mix \"2\"\n".to_string())),
            (
                "rows".to_string(),
                Value::Array(vec![Value::UInt(3), Value::Int(-4), Value::Float(2.5)]),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        for render in [
            to_string(&RawValue(v.clone())),
            to_string_pretty(&RawValue(v.clone())),
        ] {
            let text = render.unwrap();
            let back = parse_value(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn float_formats_round_trip() {
        for x in [0.25f64, 1.0, -3.5e-9, 1e18, 0.1 + 0.2] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("nul").is_err());
    }

    /// Serialize adapter so tests can render a raw `Value`.
    struct RawValue(Value);

    impl Serialize for RawValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
