//! Minimal `bytes` stand-in: the little-endian cursor operations the trace
//! codec uses, implemented for `&[u8]` (reading) and `Vec<u8>` (writing).

/// Read side: consume from the front of a byte slice.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes(head.try_into().unwrap())
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }
}

/// Write side: append to a growable buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0xab);
        v.put_u16_le(0x1234);
        v.put_u32_le(0xdead_beef);
        v.put_u64_le(0x0102_0304_0506_0708);
        v.put_slice(b"xy");
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 2);
    }
}
