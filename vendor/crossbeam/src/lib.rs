//! Minimal `crossbeam` stand-in: `crossbeam::scope` built on
//! `std::thread::scope` (std has structured scoped threads since 1.63).

use std::thread;

/// Scope handle passed to the closure; spawned threads may borrow from the
/// enclosing stack frame and are joined before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. Like crossbeam, the closure receives the
    /// scope again so it can spawn nested threads.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a thread scope; every spawned thread is joined before this
/// returns. Mirrors crossbeam's signature: the result is `Err` if any
/// spawned thread panicked (std's scope propagates the panic instead, so
/// the `Err` arm is kept only for signature compatibility).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
