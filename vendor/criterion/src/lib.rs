//! Minimal `criterion` stand-in: wall-clock benchmarking with the criterion
//! API shape this workspace uses (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `iter`, `iter_batched`). Each benchmark runs a short
//! warmup, then `sample_size` timed samples, and prints mean/median/min
//! per-iteration times. No statistics beyond that, no HTML reports.
//!
//! Like real criterion, `--bench` on the command line is accepted (ignored)
//! and an optional substring filter argument selects which benchmarks run.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the stub runs one setup per
/// measured batch regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // First non-flag CLI argument is a name filter (criterion-compatible
        // enough for `cargo bench -- <filter>`).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let sample_size = self.default_sample_size;
        self.run_one(&name, sample_size, f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        report(name, &bencher.samples);
    }
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Per-iteration durations, one entry per sample.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let median = sorted[sorted.len() / 2];
    println!(
        "{name:<40} mean {:>12} median {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(sorted[0]),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benches_run() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut runs = 0usize;
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(4);
            g.bench_function("batched", |b| {
                b.iter_batched(|| 21, |x| black_box(x * 2), BatchSize::SmallInput)
            });
            g.finish();
        }
        runs += 1;
        assert_eq!(runs, 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
